//! Goertzel algorithm: single-bin DFT evaluation.
//!
//! The paper (§3.2.2, §4.1) proposes the Goertzel filter as the low-power
//! alternative to a full FFT on the tag's MCU — the decoder only needs the
//! energy at the handful of beat frequencies corresponding to the CSSK symbol
//! alphabet, not the whole spectrum. This module provides:
//!
//! * [`goertzel_power`] — one-shot power at an arbitrary (fractional-bin)
//!   frequency,
//! * [`Goertzel`] — a streaming evaluator fed sample by sample,
//! * [`SlidingGoertzel`] — the sliding variant (Chicharo & Kilani 1996, cited
//!   by the paper) that updates a DFT bin as the window slides one sample,
//! * [`GoertzelBank`] — a bank of evaluators, one per symbol frequency, which
//!   is exactly the structure a BiScatter tag MCU would run.

use crate::TAU;

/// Precomputed Goertzel recurrence coefficients for one normalized
/// frequency — the cacheable part of the filter. A [`Goertzel`] evaluator
/// pays the three trig calls on every construction; detection paths that
/// evaluate the same frequency for every bit window of every frame (the
/// radar's multi-tag uplink decoder) compute a `GoertzelCoeffs` once per
/// tag and run the stateless [`GoertzelCoeffs::power_shifted`] per window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoertzelCoeffs {
    coeff: f64,
    cos_w: f64,
    sin_w: f64,
}

impl GoertzelCoeffs {
    /// Coefficients for normalized frequency `f_norm = f / fs` (cycles per
    /// sample). Same convention as [`Goertzel::new`].
    pub fn new(f_norm: f64) -> Self {
        let w = TAU * f_norm;
        GoertzelCoeffs {
            coeff: 2.0 * w.cos(),
            cos_w: w.cos(),
            sin_w: w.sin(),
        }
    }

    /// Spectral power of `samples` at this frequency.
    pub fn power(&self, samples: &[f64]) -> f64 {
        self.power_shifted(samples, 0.0)
    }

    /// Spectral power of `samples` with `shift` subtracted from every
    /// sample, without materializing the shifted sequence. Each recurrence
    /// step consumes `x - shift`, so the result is bit-identical to copying
    /// the samples into a scratch buffer, subtracting, and running the
    /// plain filter — with zero allocation and a single pass.
    pub fn power_shifted(&self, samples: &[f64], shift: f64) -> f64 {
        let (mut s1, mut s2) = (0.0f64, 0.0f64);
        for &x in samples {
            let s0 = (x - shift) + self.coeff * s1 - s2;
            s2 = s1;
            s1 = s0;
        }
        let re = s1 * self.cos_w - s2;
        let im = s1 * self.sin_w;
        re * re + im * im
    }
}

/// Spectral power of `samples` at `f_norm` with the window mean removed —
/// the decision metric of the uplink demodulator (the subcarrier rides on a
/// DC amplitude level). Folds mean removal into the Goertzel pass instead
/// of allocating a mean-subtracted copy; the mean is accumulated in the
/// same left-to-right order as `iter().sum()`, so results are bit-identical
/// to the subtract-then-filter formulation.
pub fn goertzel_power_dc_removed(samples: &[f64], f_norm: f64) -> f64 {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    GoertzelCoeffs::new(f_norm).power_shifted(samples, mean)
}

/// Streaming Goertzel evaluator for a single frequency.
///
/// Feed samples with [`Goertzel::push`]; read the spectral power for the
/// samples seen so far with [`Goertzel::power`]. The frequency is specified
/// as a *normalized* frequency `f/fs` in cycles/sample, so the evaluator is
/// sample-rate agnostic and supports fractional bins.
#[derive(Debug, Clone)]
pub struct Goertzel {
    coeff: f64,
    cos_w: f64,
    sin_w: f64,
    s1: f64,
    s2: f64,
    n: usize,
}

impl Goertzel {
    /// Creates an evaluator for normalized frequency `f_norm = f / fs`
    /// (cycles per sample, typically in `[0, 0.5]`).
    pub fn new(f_norm: f64) -> Self {
        let w = TAU * f_norm;
        Goertzel {
            coeff: 2.0 * w.cos(),
            cos_w: w.cos(),
            sin_w: w.sin(),
            s1: 0.0,
            s2: 0.0,
            n: 0,
        }
    }

    /// Processes one sample.
    #[inline]
    pub fn push(&mut self, x: f64) {
        let s0 = x + self.coeff * self.s1 - self.s2;
        self.s2 = self.s1;
        self.s1 = s0;
        self.n += 1;
    }

    /// Number of samples processed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if no samples have been processed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// DFT coefficient (complex) for the samples processed so far.
    pub fn dft(&self) -> (f64, f64) {
        let re = self.s1 * self.cos_w - self.s2;
        let im = self.s1 * self.sin_w;
        (re, im)
    }

    /// Spectral power `|X(f)|^2` for the samples processed so far.
    pub fn power(&self) -> f64 {
        let (re, im) = self.dft();
        re * re + im * im
    }

    /// Spectral magnitude `|X(f)|`.
    pub fn magnitude(&self) -> f64 {
        self.power().sqrt()
    }

    /// Resets the internal state so the evaluator can be reused.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
        self.n = 0;
    }
}

/// One-shot spectral power of `samples` at normalized frequency `f_norm`.
///
/// # Examples
///
/// ```
/// use biscatter_dsp::goertzel::goertzel_power;
///
/// let tone: Vec<f64> = (0..128)
///     .map(|i| (std::f64::consts::TAU * 8.0 * i as f64 / 128.0).cos())
///     .collect();
/// // Power concentrates at bin 8, not bin 20.
/// assert!(goertzel_power(&tone, 8.0 / 128.0) > 100.0 * goertzel_power(&tone, 20.0 / 128.0));
/// ```
pub fn goertzel_power(samples: &[f64], f_norm: f64) -> f64 {
    let mut g = Goertzel::new(f_norm);
    for &x in samples {
        g.push(x);
    }
    g.power()
}

/// One-shot spectral magnitude of `samples` at normalized frequency `f_norm`.
pub fn goertzel_magnitude(samples: &[f64], f_norm: f64) -> f64 {
    goertzel_power(samples, f_norm).sqrt()
}

/// Sliding Goertzel: maintains the DFT bin of the most recent `window`
/// samples, updated in O(1) per new sample.
///
/// The sliding DFT recurrence is
/// `X_new = (X_old + x_in - x_out) * e^{i w}` for bin frequency `w` that is an
/// integer number of cycles per window; this struct restricts the frequency to
/// an exact bin `k / window` for that reason.
#[derive(Debug, Clone)]
pub struct SlidingGoertzel {
    window: usize,
    rot_re: f64,
    rot_im: f64,
    x_re: f64,
    x_im: f64,
    buf: Vec<f64>,
    pos: usize,
    filled: usize,
}

impl SlidingGoertzel {
    /// Creates a sliding evaluator for bin `k` of a `window`-sample DFT.
    ///
    /// # Panics
    /// Panics if `window == 0` or `k >= window`.
    pub fn new(window: usize, k: usize) -> Self {
        assert!(window > 0, "window must be nonzero");
        assert!(k < window, "bin {k} out of range for window {window}");
        let w = TAU * k as f64 / window as f64;
        SlidingGoertzel {
            window,
            rot_re: w.cos(),
            rot_im: w.sin(),
            x_re: 0.0,
            x_im: 0.0,
            buf: vec![0.0; window],
            pos: 0,
            filled: 0,
        }
    }

    /// Slides the window forward by one sample.
    pub fn push(&mut self, x_in: f64) {
        let x_out = self.buf[self.pos];
        self.buf[self.pos] = x_in;
        self.pos = (self.pos + 1) % self.window;
        if self.filled < self.window {
            self.filled += 1;
        }
        let re = self.x_re + x_in - x_out;
        let im = self.x_im;
        // Multiply by e^{i w}.
        self.x_re = re * self.rot_re - im * self.rot_im;
        self.x_im = re * self.rot_im + im * self.rot_re;
    }

    /// True once a full window of samples has been seen.
    pub fn ready(&self) -> bool {
        self.filled == self.window
    }

    /// Power of the bin over the current window contents.
    pub fn power(&self) -> f64 {
        self.x_re * self.x_re + self.x_im * self.x_im
    }
}

/// A bank of Goertzel evaluators, one per candidate frequency — the tag's
/// low-power replacement for a full FFT over the symbol alphabet.
#[derive(Debug, Clone)]
pub struct GoertzelBank {
    filters: Vec<Goertzel>,
    freqs: Vec<f64>,
}

impl GoertzelBank {
    /// Creates a bank for the given normalized frequencies (`f/fs`).
    pub fn new(freqs_norm: &[f64]) -> Self {
        GoertzelBank {
            filters: freqs_norm.iter().map(|&f| Goertzel::new(f)).collect(),
            freqs: freqs_norm.to_vec(),
        }
    }

    /// Number of frequencies in the bank.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True if the bank has no filters.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Processes a block of samples through every filter.
    pub fn process(&mut self, samples: &[f64]) {
        for &x in samples {
            for g in &mut self.filters {
                g.push(x);
            }
        }
    }

    /// Powers of all bins, in the order the frequencies were given.
    pub fn powers(&self) -> Vec<f64> {
        self.filters.iter().map(|g| g.power()).collect()
    }

    /// Index and normalized frequency of the strongest bin.
    /// Returns `None` for an empty bank.
    pub fn argmax(&self) -> Option<(usize, f64)> {
        let powers = self.powers();
        let (idx, _) = powers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())?;
        Some((idx, self.freqs[idx]))
    }

    /// Resets every filter for the next symbol window.
    pub fn reset(&mut self) {
        for g in &mut self.filters {
            g.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::rfft;

    fn tone(n: usize, cycles: f64, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (TAU * cycles * i as f64 / n as f64 + phase).cos())
            .collect()
    }

    #[test]
    fn goertzel_matches_fft_bin() {
        let n = 128;
        let x = tone(n, 7.0, 0.3);
        let spec = rfft(&x);
        for k in [0usize, 3, 7, 20, 63] {
            let g = goertzel_power(&x, k as f64 / n as f64);
            let f = spec[k].norm_sq();
            assert!(
                (g - f).abs() < 1e-6 * (1.0 + f),
                "bin {k}: goertzel {g} vs fft {f}"
            );
        }
    }

    #[test]
    fn detects_tone_frequency() {
        let n = 256;
        let x = tone(n, 19.0, 1.1);
        let mut best = (0, 0.0);
        for k in 1..n / 2 {
            let p = goertzel_power(&x, k as f64 / n as f64);
            if p > best.1 {
                best = (k, p);
            }
        }
        assert_eq!(best.0, 19);
    }

    #[test]
    fn fractional_bin_peak() {
        // Tone at 10.5 cycles/window: power at 10.5 must beat 10 and 11.
        let n = 256;
        let x = tone(n, 10.5, 0.0);
        let p_frac = goertzel_power(&x, 10.5 / n as f64);
        let p10 = goertzel_power(&x, 10.0 / n as f64);
        let p11 = goertzel_power(&x, 11.0 / n as f64);
        assert!(p_frac > p10 && p_frac > p11);
    }

    #[test]
    fn reset_clears_state() {
        let mut g = Goertzel::new(0.1);
        g.push(1.0);
        g.push(-0.5);
        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.power(), 0.0);
    }

    #[test]
    fn sliding_matches_block_after_fill() {
        let n = 64;
        let k = 5;
        let total = 3 * n;
        let x: Vec<f64> = (0..total)
            .map(|i| (TAU * 0.07 * i as f64).sin() + 0.3 * (TAU * 0.19 * i as f64).cos())
            .collect();
        let mut sg = SlidingGoertzel::new(n, k);
        for &v in &x {
            sg.push(v);
        }
        assert!(sg.ready());
        // Compare against block Goertzel on the last n samples.
        let tail = &x[total - n..];
        let block = goertzel_power(tail, k as f64 / n as f64);
        let sliding = sg.power();
        assert!(
            (block - sliding).abs() < 1e-6 * (1.0 + block),
            "block {block} vs sliding {sliding}"
        );
    }

    #[test]
    fn sliding_not_ready_before_fill() {
        let mut sg = SlidingGoertzel::new(16, 2);
        for i in 0..15 {
            sg.push(i as f64);
            assert!(!sg.ready());
        }
        sg.push(15.0);
        assert!(sg.ready());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sliding_rejects_bad_bin() {
        SlidingGoertzel::new(8, 8);
    }

    #[test]
    fn bank_picks_correct_symbol() {
        let n = 512;
        let fs = 1.0;
        let freqs: Vec<f64> = (1..=8).map(|k| 0.02 * k as f64).collect();
        // Signal at the 5th frequency (index 4).
        let f_sig = freqs[4];
        let x: Vec<f64> = (0..n)
            .map(|i| (TAU * f_sig / fs * i as f64).cos())
            .collect();
        let mut bank = GoertzelBank::new(&freqs);
        bank.process(&x);
        let (idx, f) = bank.argmax().unwrap();
        assert_eq!(idx, 4);
        assert_eq!(f, f_sig);
    }

    #[test]
    fn bank_reset_reuses() {
        let freqs = [0.1, 0.2];
        let mut bank = GoertzelBank::new(&freqs);
        let x1: Vec<f64> = (0..128).map(|i| (TAU * 0.1 * i as f64).cos()).collect();
        bank.process(&x1);
        assert_eq!(bank.argmax().unwrap().0, 0);
        bank.reset();
        let x2: Vec<f64> = (0..128).map(|i| (TAU * 0.2 * i as f64).cos()).collect();
        bank.process(&x2);
        assert_eq!(bank.argmax().unwrap().0, 1);
    }

    #[test]
    fn empty_bank() {
        let bank = GoertzelBank::new(&[]);
        assert!(bank.is_empty());
        assert!(bank.argmax().is_none());
    }

    #[test]
    fn coeffs_match_streaming_evaluator() {
        let f_norm = 0.173;
        let x: Vec<f64> = (0..200)
            .map(|i| (TAU * f_norm * i as f64).cos() + 0.3)
            .collect();
        let mut g = Goertzel::new(f_norm);
        for &s in &x {
            g.push(s);
        }
        let c = GoertzelCoeffs::new(f_norm);
        assert_eq!(c.power(&x).to_bits(), g.power().to_bits());
    }

    #[test]
    fn dc_fold_matches_subtract_then_filter() {
        let f_norm = 0.11;
        let x: Vec<f64> = (0..64)
            .map(|i| (TAU * f_norm * i as f64).sin() * 0.7 + 2.5)
            .collect();
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        let shifted: Vec<f64> = x.iter().map(|&v| v - mean).collect();
        let folded = goertzel_power_dc_removed(&x, f_norm);
        let materialized = goertzel_power(&shifted, f_norm);
        assert_eq!(folded.to_bits(), materialized.to_bits());
    }

    #[test]
    fn dc_fold_empty_window_is_zero() {
        assert_eq!(goertzel_power_dc_removed(&[], 0.1), 0.0);
    }
}
