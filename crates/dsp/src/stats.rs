//! Statistics and link-budget math helpers: dB conversions, moments,
//! the Gaussian Q-function, and textbook BER references used to sanity-check
//! simulated bit-error rates (e.g. the paper's claim that 4 dB SNR ≈ 1e-2
//! BER for non-coherent OOK).

/// Converts a linear power ratio to decibels.
pub fn pow_to_db(p: f64) -> f64 {
    10.0 * p.log10()
}

/// Converts decibels to a linear power ratio.
pub fn db_to_pow(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear amplitude ratio to decibels.
pub fn amp_to_db(a: f64) -> f64 {
    20.0 * a.log10()
}

/// Converts decibels to a linear amplitude ratio.
pub fn db_to_amp(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts power in milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts dBm to watts.
pub fn dbm_to_watts(dbm: f64) -> f64 {
    dbm_to_mw(dbm) / 1000.0
}

/// Converts watts to dBm.
pub fn watts_to_dbm(w: f64) -> f64 {
    mw_to_dbm(w * 1000.0)
}

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance. Returns 0 for slices shorter than 2.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root-mean-square value.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|&v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Median of a slice (averages the middle pair for even lengths).
/// Returns 0 for an empty slice.
pub fn median(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut s = x.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if s.len() % 2 == 1 {
        s[s.len() / 2]
    } else {
        0.5 * (s[s.len() / 2 - 1] + s[s.len() / 2])
    }
}

/// The `q`-th percentile (0–100) by linear interpolation of order statistics.
pub fn percentile(x: &[f64], q: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut s = x.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = (q / 100.0).clamp(0.0, 1.0) * (s.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < s.len() {
        s[i] * (1.0 - frac) + s[i + 1] * frac
    } else {
        s[i]
    }
}

/// Complementary error function, Abramowitz & Stegun 7.1.26 rational
/// approximation (|error| < 1.5e-7), extended to negative arguments by
/// `erfc(-x) = 2 - erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// Gaussian Q-function: `Q(x) = P(N(0,1) > x) = erfc(x / sqrt(2)) / 2`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Theoretical BER of coherent BPSK over AWGN at the given Eb/N0 (linear).
pub fn ber_bpsk(ebn0: f64) -> f64 {
    q_function((2.0 * ebn0).sqrt())
}

/// Theoretical BER of non-coherent OOK (envelope detection) at the given
/// *average* SNR (linear): `0.5 exp(-SNR/2)` — the standard high-SNR
/// approximation for envelope-detected on-off keying.
pub fn ber_ook_noncoherent(snr: f64) -> f64 {
    0.5 * (-snr / 2.0).exp()
}

/// Theoretical BER of non-coherent binary FSK: `0.5 exp(-SNR/2)` with SNR
/// interpreted per-bit.
pub fn ber_fsk_noncoherent(ebn0: f64) -> f64 {
    0.5 * (-ebn0 / 2.0).exp()
}

/// Theoretical BER of coherent (matched-filter) OOK: `Q(sqrt(2 * SNR))`.
///
/// This is the convention behind the paper's §5.1 statement that 4 dB uplink
/// SNR corresponds to a theoretical BER of ~1e-2 for simple on-off keying.
pub fn ber_ook_coherent(snr: f64) -> f64 {
    q_function((2.0 * snr).sqrt())
}

/// Symbol-error rate of non-coherent M-ary FSK (union bound):
/// `(M-1)/2 * exp(-Es/N0 / 2)` clamped to 1. This is the relevant reference
/// for CSSK, which is an M-ary frequency alphabet decoded by energy
/// comparison.
pub fn ser_mfsk_noncoherent(m: usize, esn0: f64) -> f64 {
    if m < 2 {
        return 0.0;
    }
    (((m - 1) as f64) / 2.0 * (-esn0 / 2.0).exp()).min(1.0)
}

/// Converts an M-ary symbol-error rate to the equivalent bit-error rate for
/// orthogonal signalling: `BER = SER * (M/2) / (M-1)`.
pub fn ser_to_ber_orthogonal(m: usize, ser: f64) -> f64 {
    if m < 2 {
        return 0.0;
    }
    ser * (m as f64 / 2.0) / (m as f64 - 1.0)
}

/// Wilson score interval for a proportion: returns `(low, high)` for
/// `errors` out of `trials` at ~95% confidence. Useful for reporting BER
/// confidence from Monte-Carlo runs.
pub fn wilson_interval(errors: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n = trials as f64;
    let p = errors as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * n)) / n).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrips() {
        for &v in &[0.001, 0.5, 1.0, 2.0, 1e6] {
            assert!((db_to_pow(pow_to_db(v)) - v).abs() / v < 1e-12);
            assert!((db_to_amp(amp_to_db(v)) - v).abs() / v < 1e-12);
        }
        assert!((pow_to_db(100.0) - 20.0).abs() < 1e-12);
        assert!((amp_to_db(10.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn dbm_conversions() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
        assert!((dbm_to_watts(30.0) - 1.0).abs() < 1e-12);
        assert!((watts_to_dbm(0.001) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn moments() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&x) - 2.5).abs() < 1e-12);
        assert!((variance(&x) - 1.25).abs() < 1e-12);
        assert!((std_dev(&x) - 1.25f64.sqrt()).abs() < 1e-12);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_moments() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn median_and_percentile() {
        let x = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&x), 3.0);
        assert_eq!(percentile(&x, 0.0), 1.0);
        assert_eq!(percentile(&x, 100.0), 5.0);
        assert_eq!(percentile(&x, 50.0), 3.0);
        let y = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&y), 2.5);
    }

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        // erfc(1) = 0.15729920705...
        assert!((erfc(1.0) - 0.15729920705).abs() < 1e-6);
        // symmetry
        assert!((erfc(-1.0) - (2.0 - 0.15729920705)).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-12);
    }

    #[test]
    fn q_function_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-9);
        // Q(1.6449) ~ 0.05
        assert!((q_function(1.6449) - 0.05).abs() < 1e-4);
    }

    #[test]
    fn bpsk_ber_at_known_point() {
        // BPSK at Eb/N0 = 9.6 dB gives BER ~ 1e-5.
        let ber = ber_bpsk(db_to_pow(9.6));
        assert!(ber > 1e-6 && ber < 2e-5, "got {ber}");
    }

    #[test]
    fn ook_ber_matches_paper_claim() {
        // Paper §5.1: 4 dB SNR ~ BER 1e-2 for simple OOK (coherent formula).
        let ber = ber_ook_coherent(db_to_pow(4.0));
        assert!(ber > 3e-3 && ber < 5e-2, "got {ber}");
    }

    #[test]
    fn ook_noncoherent_known_value() {
        // 0.5 exp(-snr/2) at 4 dB (snr = 2.512) = 0.1424...
        let ber = ber_ook_noncoherent(db_to_pow(4.0));
        assert!((ber - 0.1424).abs() < 1e-3, "got {ber}");
    }

    #[test]
    fn ber_monotone_in_snr() {
        let mut last = 1.0;
        for db in 0..20 {
            let b = ber_ook_noncoherent(db_to_pow(db as f64));
            assert!(b < last);
            last = b;
        }
    }

    #[test]
    fn mfsk_ser_grows_with_m() {
        let esn0 = db_to_pow(10.0);
        let s2 = ser_mfsk_noncoherent(2, esn0);
        let s16 = ser_mfsk_noncoherent(16, esn0);
        assert!(s16 > s2);
        assert!(ser_mfsk_noncoherent(1, esn0) == 0.0);
        assert!(ser_mfsk_noncoherent(1024, 0.0) == 1.0); // clamped
    }

    #[test]
    fn ser_ber_conversion() {
        // For M=2 orthogonal signalling BER == SER.
        assert!((ser_to_ber_orthogonal(2, 0.1) - 0.1).abs() < 1e-12);
        // For large M, BER -> SER/2 * M/(M-1) ~ SER/2.
        assert!((ser_to_ber_orthogonal(1024, 0.1) - 0.05005).abs() < 1e-4);
    }

    #[test]
    fn wilson_interval_basics() {
        let (lo, hi) = wilson_interval(0, 0);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 1000);
        assert!(lo == 0.0 && hi < 0.01);
        let (lo, hi) = wilson_interval(500, 1000);
        assert!(lo < 0.5 && hi > 0.5);
        assert!(hi - lo < 0.07);
    }
}
