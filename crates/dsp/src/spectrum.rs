//! Spectral estimation: periodograms, peak search with parabolic refinement,
//! noise-floor estimation, and in-band SNR measurement.
//!
//! These are the measurement primitives behind both ends of the link: the tag
//! finds its beat-frequency peak here, and the radar measures uplink SNR and
//! refines the tag's range bin to sub-bin (centimetre) precision with
//! [`parabolic_peak`].

use crate::fft::bin_to_freq;
use crate::planner::with_planner;
use crate::window::WindowKind;

/// One-sided power spectrum of a real signal, optionally windowed.
///
/// Returns `(freqs_hz, power)` with `n/2 + 1` points. Power is the squared
/// magnitude normalized by `N^2` and the window's coherent gain so that a
/// full-scale tone reads ~`0.25` (amplitude²/4) in its bin independent of
/// length.
pub fn periodogram(signal: &[f64], fs: f64, window: WindowKind) -> (Vec<f64>, Vec<f64>) {
    let n = signal.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let w = window.cached(n);
    let half = n / 2 + 1;
    let norm = 1.0 / (n as f64 * w.coherent_gain);
    // Windowed half-spectrum through the thread-local plan cache: the
    // windowed copy lives in planner scratch and the transform runs the
    // packed real-input plan, so repeated same-length calls don't allocate
    // working buffers.
    let power: Vec<f64> = with_planner(|p| {
        p.with_real_scratch(n, |p, buf| {
            for ((b, &s), &wi) in buf.iter_mut().zip(signal).zip(&w.coeffs) {
                *b = s * wi;
            }
            let mut spec = Vec::new();
            p.rfft_half_into(buf, &mut spec);
            spec.iter()
                .map(|z| {
                    let m = z.abs() * norm;
                    m * m
                })
                .collect()
        })
    });
    let freqs: Vec<f64> = (0..half).map(|k| bin_to_freq(k, n, fs)).collect();
    (freqs, power)
}

/// A detected spectral peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Integer bin index of the local maximum.
    pub bin: usize,
    /// Sub-bin refined position (fractional bins) from parabolic interpolation.
    pub refined_bin: f64,
    /// Power at the (interpolated) peak.
    pub power: f64,
}

/// Finds the strongest peak in `power`, refined with parabolic interpolation.
/// Returns `None` if the spectrum has fewer than 1 point.
pub fn find_peak(power: &[f64]) -> Option<Peak> {
    if power.is_empty() {
        return None;
    }
    let (bin, _) = power
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())?;
    Some(refine_peak(power, bin))
}

/// Finds the strongest peak restricted to bins `[lo, hi]` (inclusive, clamped).
pub fn find_peak_in_band(power: &[f64], lo: usize, hi: usize) -> Option<Peak> {
    if power.is_empty() || lo > hi {
        return None;
    }
    let hi = hi.min(power.len() - 1);
    if lo > hi {
        return None;
    }
    let (bin, _) = power[lo..=hi]
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())?;
    Some(refine_peak(power, lo + bin))
}

/// Finds all local maxima above `threshold`, each parabolic-refined, sorted
/// by descending power.
pub fn find_peaks_above(power: &[f64], threshold: f64) -> Vec<Peak> {
    let n = power.len();
    let mut peaks = Vec::new();
    for i in 0..n {
        let left = if i > 0 {
            power[i - 1]
        } else {
            f64::NEG_INFINITY
        };
        let right = if i + 1 < n {
            power[i + 1]
        } else {
            f64::NEG_INFINITY
        };
        if power[i] >= threshold && power[i] >= left && power[i] > right {
            peaks.push(refine_peak(power, i));
        }
    }
    peaks.sort_by(|a, b| b.power.partial_cmp(&a.power).unwrap());
    peaks
}

/// Parabolic (quadratic) interpolation of a peak at integer `bin`.
///
/// Fits a parabola through the peak bin and its neighbours; the refined
/// position is `bin + 0.5 (L - R) / (L - 2C + R)` where `L,C,R` are the
/// neighbouring powers. At array edges the integer bin is returned as-is.
pub fn parabolic_peak(power: &[f64], bin: usize) -> (f64, f64) {
    let p = refine_peak(power, bin);
    (p.refined_bin, p.power)
}

fn refine_peak(power: &[f64], bin: usize) -> Peak {
    let n = power.len();
    if bin == 0 || bin + 1 >= n {
        return Peak {
            bin,
            refined_bin: bin as f64,
            power: power[bin],
        };
    }
    let l = power[bin - 1];
    let c = power[bin];
    let r = power[bin + 1];
    let denom = l - 2.0 * c + r;
    if denom.abs() < 1e-300 {
        return Peak {
            bin,
            refined_bin: bin as f64,
            power: c,
        };
    }
    let delta = 0.5 * (l - r) / denom;
    let delta = delta.clamp(-0.5, 0.5);
    let p = c - 0.25 * (l - r) * delta;
    Peak {
        bin,
        refined_bin: bin as f64 + delta,
        power: p,
    }
}

/// Median-based noise-floor estimate of a power spectrum.
///
/// The median is robust to a small number of strong peaks; for a chi-squared
/// (2 dof) noise spectrum the median underestimates the mean by `ln 2`, which
/// is corrected here.
pub fn noise_floor(power: &[f64]) -> f64 {
    if power.is_empty() {
        return 0.0;
    }
    let mut sorted = power.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
    };
    median / std::f64::consts::LN_2
}

/// [`noise_floor`] computed destructively in O(n) via selection instead of a
/// full sort. Returns the exact same value as `noise_floor` on the same data
/// (the selected order statistics are identical), but permutes `power`, so
/// it is meant for scratch buffers the caller owns — the batched multi-tag
/// detector runs it on its per-tag score rows after the peak is extracted.
pub fn noise_floor_inplace(power: &mut [f64]) -> f64 {
    if power.is_empty() {
        return 0.0;
    }
    let n = power.len();
    let mid = n / 2;
    let (below, upper, _) = power.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).unwrap());
    let median = if n % 2 == 1 {
        *upper
    } else {
        // Even length: the lower middle is the max of the left partition.
        let lower = below.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        0.5 * (lower + *upper)
    };
    median / std::f64::consts::LN_2
}

/// SNR (linear) of the strongest tone in `power`: peak power over the
/// median-estimated noise floor. Returns `None` on an empty spectrum.
pub fn tone_snr(power: &[f64]) -> Option<f64> {
    let peak = find_peak(power)?;
    let floor = noise_floor(power);
    if floor <= 0.0 {
        return Some(f64::INFINITY);
    }
    Some(peak.power / floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TAU;

    fn tone(n: usize, f: f64, fs: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (TAU * f * i as f64 / fs).cos())
            .collect()
    }

    #[test]
    fn periodogram_peak_at_tone() {
        let fs = 1000.0;
        let n = 1024;
        let x = tone(n, 125.0, fs, 1.0);
        let (freqs, power) = periodogram(&x, fs, WindowKind::Hann);
        let p = find_peak(&power).unwrap();
        let f_est = freqs[1] * p.refined_bin;
        assert!((f_est - 125.0).abs() < 0.5, "estimated {f_est}");
    }

    #[test]
    fn periodogram_amplitude_calibrated() {
        // Bin-centered tone of amplitude A should read A^2/4 in its bin.
        let fs = 1024.0;
        let n = 1024;
        let x = tone(n, 128.0, fs, 2.0);
        let (_, power) = periodogram(&x, fs, WindowKind::Rect);
        let p = find_peak(&power).unwrap();
        assert!((p.power - 1.0).abs() < 1e-6, "got {}", p.power);
    }

    #[test]
    fn periodogram_empty() {
        let (f, p) = periodogram(&[], 100.0, WindowKind::Hann);
        assert!(f.is_empty() && p.is_empty());
    }

    #[test]
    fn parabolic_refines_off_bin_tone() {
        let fs = 1000.0;
        let n = 512;
        // Tone between bins: 100.7 Hz with bin spacing ~1.95 Hz.
        let x = tone(n, 100.7, fs, 1.0);
        let (freqs, power) = periodogram(&x, fs, WindowKind::Hann);
        let p = find_peak(&power).unwrap();
        let df = freqs[1];
        let f_est = p.refined_bin * df;
        assert!(
            (f_est - 100.7).abs() < 0.3,
            "refined estimate {f_est} too far"
        );
        // The refinement must beat the raw bin.
        let f_raw = p.bin as f64 * df;
        assert!((f_est - 100.7).abs() <= (f_raw - 100.7).abs() + 1e-12);
    }

    #[test]
    fn find_peak_in_band_restricts() {
        let mut power = vec![0.0; 100];
        power[10] = 5.0;
        power[50] = 10.0;
        let p = find_peak_in_band(&power, 0, 30).unwrap();
        assert_eq!(p.bin, 10);
        let p = find_peak_in_band(&power, 30, 99).unwrap();
        assert_eq!(p.bin, 50);
        assert!(find_peak_in_band(&power, 80, 20).is_none());
    }

    #[test]
    fn find_peaks_above_orders_by_power() {
        let mut power = vec![0.1; 64];
        power[10] = 3.0;
        power[30] = 7.0;
        power[55] = 1.0;
        let peaks = find_peaks_above(&power, 0.5);
        assert_eq!(peaks.len(), 3);
        assert_eq!(peaks[0].bin, 30);
        assert_eq!(peaks[1].bin, 10);
        assert_eq!(peaks[2].bin, 55);
    }

    #[test]
    fn peak_at_edge_not_refined() {
        let power = vec![5.0, 1.0, 0.5];
        let p = find_peak(&power).unwrap();
        assert_eq!(p.bin, 0);
        assert_eq!(p.refined_bin, 0.0);
    }

    #[test]
    fn noise_floor_of_flat_spectrum() {
        let power = vec![2.0; 101];
        let nf = noise_floor(&power);
        // Median = 2.0, corrected by ln2.
        assert!((nf - 2.0 / std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn noise_floor_robust_to_peaks() {
        let mut power = vec![1.0; 1000];
        power[500] = 1e9; // one huge peak shouldn't move the floor much
        let nf = noise_floor(&power);
        assert!(nf < 2.0);
    }

    #[test]
    fn tone_snr_increases_with_amplitude() {
        let fs = 1000.0;
        let n = 1024;
        // Deterministic pseudo-noise.
        let noise: Vec<f64> = (0..n)
            .map(|i| ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5)
            .collect();
        let weak: Vec<f64> = tone(n, 200.0, fs, 0.5)
            .iter()
            .zip(&noise)
            .map(|(s, n)| s + n)
            .collect();
        let strong: Vec<f64> = tone(n, 200.0, fs, 5.0)
            .iter()
            .zip(&noise)
            .map(|(s, n)| s + n)
            .collect();
        let (_, pw) = periodogram(&weak, fs, WindowKind::Hann);
        let (_, ps) = periodogram(&strong, fs, WindowKind::Hann);
        let snr_w = tone_snr(&pw).unwrap();
        let snr_s = tone_snr(&ps).unwrap();
        assert!(snr_s > snr_w * 10.0);
    }

    #[test]
    fn empty_spectrum_helpers() {
        assert!(find_peak(&[]).is_none());
        assert_eq!(noise_floor(&[]), 0.0);
        assert_eq!(noise_floor_inplace(&mut []), 0.0);
        assert!(tone_snr(&[]).is_none());
    }

    #[test]
    fn noise_floor_inplace_matches_sorted_version() {
        // Pseudo-random power values, both parities, including duplicates.
        for n in [1usize, 2, 3, 7, 8, 100, 101, 1024] {
            let power: Vec<f64> = (0..n)
                .map(|i| {
                    let v = ((i as f64 * 12.9898).sin() * 43758.5453).fract().abs();
                    if i % 7 == 0 {
                        0.25
                    } else {
                        v
                    }
                })
                .collect();
            let mut scratch = power.clone();
            let selected = noise_floor_inplace(&mut scratch);
            let sorted = noise_floor(&power);
            assert_eq!(selected.to_bits(), sorted.to_bits(), "n={n}");
        }
    }
}
