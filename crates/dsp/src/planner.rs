//! Plan-based FFT fast path.
//!
//! The free functions in [`crate::fft`] rebuild everything a transform needs
//! on every call: twiddle factors (incrementally, via the drift-prone
//! `w *= wlen` recurrence), the bit-reversal permutation, and — for
//! non-power-of-two lengths — the entire Bluestein chirp and kernel spectrum,
//! plus a fresh output allocation. Per-frame radar processing runs hundreds
//! of same-length transforms, so this module precomputes all of that once per
//! length and caches it:
//!
//! * [`FftPlan`] — an immutable, reusable plan for one length `N`. Holds the
//!   bit-reversal index table and an exact twiddle table (each entry is an
//!   independent `cis` evaluation, so there is no accumulated phase drift),
//!   or, for non-power-of-two `N`, the Bluestein chirp and pre-transformed
//!   kernel spectrum plus an inner power-of-two plan.
//! * [`RfftPlan`] — a real-input plan for even `N`: packs the signal into
//!   `N/2` complex samples, runs a half-length complex FFT, and unzips the
//!   result into the half spectrum — roughly half the work of a complex
//!   transform of length `N`.
//! * [`FftPlanner`] — a cache of plans keyed by length, with in-place
//!   `fft`/`ifft` entry points and internal scratch buffers so steady-state
//!   transforms perform no heap allocation.
//! * [`with_planner`] — a thread-local planner, so worker threads (e.g. the
//!   streaming runtime's stage pools) each hold their own plan cache with no
//!   locking.
//!
//! ## Scratch-buffer conventions
//!
//! `process`/`process_inverse` allocate scratch only when the plan needs it
//! (Bluestein); power-of-two plans never allocate. The `*_with_scratch`
//! variants take a caller-owned `Vec<Cpx>` that is resized as needed and can
//! be reused across calls — [`FftPlanner`] routes its entry points through
//! its own scratch, so planner users get allocation-free steady state without
//! managing buffers themselves. Scratch contents are unspecified on return.

use crate::complex::Cpx;
use crate::fft::{is_pow2, next_pow2};
use crate::simd;
use crate::TAU;
use biscatter_obs::metrics::Counter;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::OnceLock;

/// Registry handles for plan-cache telemetry, resolved once per process.
/// Hits/misses count lookups in *any* thread's planner (the caches are
/// per-thread, the counters are global), so a streaming run's hit rate
/// reflects how well `warm_dsp_plans` pre-seeded the workers.
struct PlanCacheMetrics {
    hits: Counter,
    misses: Counter,
    built_radix2: Counter,
    built_bluestein: Counter,
    built_rfft: Counter,
    rfft_calls: Counter,
    irfft_calls: Counter,
}

fn cache_metrics() -> &'static PlanCacheMetrics {
    static METRICS: OnceLock<PlanCacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = biscatter_obs::registry();
        PlanCacheMetrics {
            hits: r.counter("dsp.plan_cache.hits"),
            misses: r.counter("dsp.plan_cache.misses"),
            built_radix2: r.counter("dsp.plan_cache.built_radix2"),
            built_bluestein: r.counter("dsp.plan_cache.built_bluestein"),
            built_rfft: r.counter("dsp.plan_cache.built_rfft"),
            rfft_calls: r.counter("dsp.fft.rfft_calls"),
            irfft_calls: r.counter("dsp.fft.irfft_calls"),
        }
    })
}

/// A reusable transform plan for one length.
///
/// Construction is `O(N log N)` (it runs one FFT to pre-transform the
/// Bluestein kernel when `N` is not a power of two); every subsequent
/// [`FftPlan::process`] call reuses the tables. Plans are immutable — share
/// them freely via [`Rc`] (they are thread-local by design; see
/// [`with_planner`]).
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

enum PlanKind {
    /// `n <= 1`: the transform is the identity.
    Trivial,
    /// Iterative radix-2 Cooley–Tukey with precomputed tables.
    Radix2 {
        /// `bitrev[i]` = bit-reversed index of `i` (within `log2(n)` bits).
        bitrev: Vec<u32>,
        /// Stage-contiguous twiddles: for each stage `len = 4, 8, .., n`
        /// the `len/2` factors `e^{-i 2π j / len}` are stored back to back
        /// (offset `len/2 - 2`, total `n - 2` entries), so every stage
        /// reads a dense slice the vector kernels can load directly —
        /// no strided gather. Entries are bit-identical to the classic
        /// strided table (`j/len` and `(j·stride)/n` round identically);
        /// the inverse conjugates on the fly.
        stage_tw: Vec<Cpx>,
    },
    /// Bluestein chirp-z: DFT as circular convolution at length `m`.
    Bluestein {
        /// Power-of-two convolution length `>= 2n - 1`.
        m: usize,
        /// `chirp[k] = e^{-i π k² / n}` (forward convention), `k in 0..n`.
        chirp: Vec<Cpx>,
        /// Forward FFT (length `m`) of the zero-padded conjugate-chirp
        /// kernel `b[k] = b[m-k] = conj(chirp[k])`.
        kernel_spec: Vec<Cpx>,
        /// Inner power-of-two plan of length `m`.
        inner: Rc<FftPlan>,
    },
}

impl FftPlan {
    /// Builds a plan for length `n`, constructing any inner power-of-two
    /// plan itself. Prefer [`FftPlanner::plan`], which shares inner plans
    /// across cached lengths.
    pub fn new(n: usize) -> FftPlan {
        Self::build(n, |m| Rc::new(FftPlan::new(m)))
    }

    fn build(n: usize, inner_plan: impl FnOnce(usize) -> Rc<FftPlan>) -> FftPlan {
        if n <= 1 {
            return FftPlan {
                n,
                kind: PlanKind::Trivial,
            };
        }
        if is_pow2(n) {
            let bits = n.trailing_zeros();
            let bitrev = (0..n as u32)
                .map(|i| i.reverse_bits() >> (32 - bits))
                .collect();
            let mut stage_tw = Vec::with_capacity(n.saturating_sub(2));
            let mut len = 4;
            while len <= n {
                stage_tw.extend((0..len / 2).map(|j| Cpx::cis(-TAU * j as f64 / len as f64)));
                len <<= 1;
            }
            return FftPlan {
                n,
                kind: PlanKind::Radix2 { bitrev, stage_tw },
            };
        }

        let m = next_pow2(2 * n - 1);
        let inner = inner_plan(m);
        // k² mod 2n keeps the phase argument small and exact for large k.
        let chirp: Vec<Cpx> = (0..n)
            .map(|k| {
                let k2 = (k as u64 * k as u64) % (2 * n as u64);
                Cpx::cis(-std::f64::consts::PI * k2 as f64 / n as f64)
            })
            .collect();
        let mut kernel_spec = vec![Cpx::ZERO; m];
        kernel_spec[0] = chirp[0].conj();
        for k in 1..n {
            let c = chirp[k].conj();
            kernel_spec[k] = c;
            kernel_spec[m - k] = c;
        }
        inner.process(&mut kernel_spec);
        FftPlan {
            n,
            kind: PlanKind::Bluestein {
                m,
                chirp,
                kernel_spec,
                inner,
            },
        }
    }

    /// The transform length this plan serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the trivial `n <= 1` plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT (unnormalized). Allocates scratch internally for
    /// Bluestein lengths; power-of-two lengths never allocate.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the planned length.
    pub fn process(&self, data: &mut [Cpx]) {
        let mut scratch = Vec::new();
        self.process_with_scratch(data, &mut scratch);
    }

    /// In-place inverse DFT, including the `1/N` normalization.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the planned length.
    pub fn process_inverse(&self, data: &mut [Cpx]) {
        let mut scratch = Vec::new();
        self.process_inverse_with_scratch(data, &mut scratch);
    }

    /// [`FftPlan::process`] with a caller-owned scratch buffer (resized as
    /// needed, contents unspecified afterwards). Power-of-two plans ignore
    /// it entirely.
    pub fn process_with_scratch(&self, data: &mut [Cpx], scratch: &mut Vec<Cpx>) {
        assert_eq!(
            data.len(),
            self.n,
            "plan is for length {}, got {}",
            self.n,
            data.len()
        );
        match &self.kind {
            PlanKind::Trivial => {}
            PlanKind::Radix2 { bitrev, stage_tw } => radix2(data, bitrev, stage_tw, false),
            PlanKind::Bluestein {
                m,
                chirp,
                kernel_spec,
                inner,
            } => {
                scratch.clear();
                scratch.resize(*m, Cpx::ZERO);
                simd::cmul_into(&mut scratch[..self.n], data, chirp);
                inner.process(scratch);
                simd::cmul_assign(scratch, kernel_spec);
                inner.process_inverse(scratch);
                simd::cmul_into(data, &scratch[..self.n], chirp);
            }
        }
    }

    /// [`FftPlan::process_inverse`] with a caller-owned scratch buffer.
    pub fn process_inverse_with_scratch(&self, data: &mut [Cpx], scratch: &mut Vec<Cpx>) {
        assert_eq!(
            data.len(),
            self.n,
            "plan is for length {}, got {}",
            self.n,
            data.len()
        );
        match &self.kind {
            PlanKind::Trivial => {}
            PlanKind::Radix2 { bitrev, stage_tw } => {
                radix2(data, bitrev, stage_tw, true);
                let s = 1.0 / self.n as f64;
                for z in data.iter_mut() {
                    *z = z.scale(s);
                }
            }
            PlanKind::Bluestein { .. } => {
                // ifft(x) = conj(fft(conj(x))) / N reuses the forward chirp
                // and kernel, halving the tables a Bluestein plan carries.
                for z in data.iter_mut() {
                    *z = z.conj();
                }
                self.process_with_scratch(data, scratch);
                let s = 1.0 / self.n as f64;
                for z in data.iter_mut() {
                    *z = z.conj().scale(s);
                }
            }
        }
    }
}

/// Radix-2 butterflies over precomputed tables. Each twiddle is an exact
/// table entry (conjugated for the inverse), so there is no dependence chain
/// between butterflies and no accumulated phase drift — unlike the
/// incremental `w *= wlen` recurrence in [`crate::fft::reference`]. The
/// per-stage loops live in [`crate::simd`] behind runtime dispatch; both
/// tiers produce bit-identical f64 results.
fn radix2(data: &mut [Cpx], bitrev: &[u32], stage_tw: &[Cpx], inverse: bool) {
    let n = data.len();
    for (i, &rev) in bitrev.iter().enumerate() {
        let j = rev as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    if n < 2 {
        return;
    }
    // First stage: every twiddle is 1, so the butterflies are pure
    // add/subtract pairs — no table reads, no complex multiplies.
    simd::fft_first_stage(data);
    let mut len = 4;
    while len <= n {
        let half = len / 2;
        simd::fft_stage(data, &stage_tw[half - 2..half - 2 + half], len, inverse);
        len <<= 1;
    }
}

/// A real-input FFT plan for even lengths.
///
/// Packs the `N` real samples into `N/2` complex values
/// (`z[k] = x[2k] + i·x[2k+1]`), transforms at half length, and unzips into
/// the `N/2 + 1` half spectrum (the upper bins of a real signal's spectrum
/// are the conjugate mirror, so nothing is lost).
pub struct RfftPlan {
    n: usize,
    /// Complex plan of length `n/2`.
    inner: Rc<FftPlan>,
    /// `twiddle[k] = e^{-i 2π k / n}` for `k in 0..=n/2`.
    twiddle: Vec<Cpx>,
}

impl RfftPlan {
    /// Builds a real-FFT plan for even `n >= 2`. Prefer
    /// [`FftPlanner::rfft_plan`], which caches and shares the inner plan.
    ///
    /// # Panics
    /// Panics if `n` is odd or zero (odd lengths have no packed fast path;
    /// use a complex [`FftPlan`] on a widened buffer instead).
    pub fn new(n: usize) -> RfftPlan {
        Self::build(n, |h| Rc::new(FftPlan::new(h)))
    }

    fn build(n: usize, inner_plan: impl FnOnce(usize) -> Rc<FftPlan>) -> RfftPlan {
        assert!(
            n >= 2 && n % 2 == 0,
            "RfftPlan requires even n >= 2, got {n}"
        );
        let inner = inner_plan(n / 2);
        let twiddle = (0..=n / 2)
            .map(|k| Cpx::cis(-TAU * k as f64 / n as f64))
            .collect();
        RfftPlan { n, inner, twiddle }
    }

    /// The real input length this plan serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: real-FFT plans require even `n >= 2`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of half-spectrum bins produced: `n/2 + 1`.
    pub fn output_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward transform of `input` (length `n`) into the half spectrum
    /// bins `0..=n/2`, written to `out` (cleared and resized). `scratch`
    /// holds the packed half-length signal between calls; reusing it makes
    /// steady-state calls allocation-free.
    ///
    /// # Panics
    /// Panics if `input.len()` differs from the planned length.
    pub fn process_with_scratch(&self, input: &[f64], out: &mut Vec<Cpx>, scratch: &mut Vec<Cpx>) {
        assert_eq!(
            input.len(),
            self.n,
            "rfft plan is for length {}, got {}",
            self.n,
            input.len()
        );
        let h = self.n / 2;
        scratch.clear();
        scratch.extend((0..h).map(|k| Cpx::new(input[2 * k], input[2 * k + 1])));
        self.inner.process(scratch);

        // Unzip: with Z the packed transform, E[k]/O[k] the transforms of
        // the even/odd samples,
        //   E[k] = (Z[k] + conj(Z[h-k])) / 2
        //   O[k] = (Z[k] - conj(Z[h-k])) / 2i
        //   X[k] = E[k] + e^{-i 2π k / n} · O[k]
        // (indices mod h, so Z[h] wraps to Z[0]). The loop lives in
        // [`crate::simd`] behind runtime dispatch.
        simd::rfft_unzip(scratch, &self.twiddle, h, out);
    }

    /// Inverse transform: reconstructs the `n` real samples from the half
    /// spectrum `spec` (bins `0..=n/2`), written to `out` (cleared and
    /// resized). Normalization is included, so `inverse(process(x))`
    /// recovers `x` up to rounding — no extra `1/N` scaling is needed.
    ///
    /// This is the packed inverse of [`RfftPlan::process_with_scratch`]:
    /// the zip recovers the half-length packed transform from the half
    /// spectrum (the forward unzip relations solved for `E`/`O`, using the
    /// conjugate of the unit-modulus twiddle), then one half-length inverse
    /// complex FFT (which already carries the `1/(n/2)` factor) and an
    /// unpack `x[2k] = Re z[k]`, `x[2k+1] = Im z[k]`. Roughly half the work
    /// of a full complex inverse of length `n`, same as on the forward
    /// side. The zip loop lives in [`crate::simd`] behind runtime dispatch.
    ///
    /// `scratch` holds the packed signal between calls; reusing it makes
    /// steady-state calls allocation-free for power-of-two `n` (an odd
    /// half-length falls to a Bluestein inner plan, which allocates its own
    /// convolution scratch — exactly like the forward path).
    ///
    /// # Panics
    /// Panics if `spec.len()` differs from `n/2 + 1`.
    pub fn inverse(&self, spec: &[Cpx], out: &mut Vec<f64>, scratch: &mut Vec<Cpx>) {
        assert_eq!(
            spec.len(),
            self.n / 2 + 1,
            "irfft plan is for {} half-spectrum bins, got {}",
            self.n / 2 + 1,
            spec.len()
        );
        let h = self.n / 2;
        simd::irfft_zip(spec, &self.twiddle, h, scratch);
        self.inner.process_inverse(scratch);
        out.clear();
        out.reserve(self.n);
        for z in scratch.iter() {
            out.push(z.re);
            out.push(z.im);
        }
    }
}

/// A per-thread cache of [`FftPlan`]s and [`RfftPlan`]s keyed by length,
/// plus internal scratch buffers, giving allocation-free in-place transforms
/// once a length has been seen.
#[derive(Default)]
pub struct FftPlanner {
    plans: HashMap<usize, Rc<FftPlan>>,
    rplans: HashMap<usize, Rc<RfftPlan>>,
    /// Bluestein convolution scratch, passed to `process_with_scratch`.
    scratch: Vec<Cpx>,
    /// Complex working buffer for real-input transforms.
    pack: Vec<Cpx>,
    /// Real working buffer lent out by [`FftPlanner::with_real_scratch`].
    real_scratch: Vec<f64>,
}

impl FftPlanner {
    /// An empty planner.
    pub fn new() -> FftPlanner {
        FftPlanner::default()
    }

    /// The cached plan for length `n`, building it on first use. Bluestein
    /// lengths share their inner power-of-two plan with the cache.
    pub fn plan(&mut self, n: usize) -> Rc<FftPlan> {
        let cm = cache_metrics();
        if let Some(p) = self.plans.get(&n) {
            cm.hits.inc();
            return Rc::clone(p);
        }
        cm.misses.inc();
        let plan = if !is_pow2(n) && n > 1 {
            cm.built_bluestein.inc();
            let m = next_pow2(2 * n - 1);
            let inner = self.plan(m);
            Rc::new(FftPlan::build(n, |_| inner))
        } else {
            if n > 1 {
                cm.built_radix2.inc();
            }
            Rc::new(FftPlan::new(n))
        };
        self.plans.insert(n, Rc::clone(&plan));
        plan
    }

    /// The cached real-FFT plan for even length `n`, building it on first
    /// use (its half-length inner plan is shared with [`FftPlanner::plan`]).
    ///
    /// # Panics
    /// Panics if `n` is odd or zero.
    pub fn rfft_plan(&mut self, n: usize) -> Rc<RfftPlan> {
        let cm = cache_metrics();
        if let Some(p) = self.rplans.get(&n) {
            cm.hits.inc();
            return Rc::clone(p);
        }
        cm.misses.inc();
        cm.built_rfft.inc();
        let inner = self.plan(n / 2);
        let plan = Rc::new(RfftPlan::build(n, |_| inner));
        self.rplans.insert(n, Rc::clone(&plan));
        plan
    }

    /// In-place forward DFT through the cached plan for `data.len()`.
    pub fn fft_in_place(&mut self, data: &mut [Cpx]) {
        let plan = self.plan(data.len());
        plan.process_with_scratch(data, &mut self.scratch);
    }

    /// In-place inverse DFT (normalized by `1/N`) through the cached plan.
    pub fn ifft_in_place(&mut self, data: &mut [Cpx]) {
        let plan = self.plan(data.len());
        plan.process_inverse_with_scratch(data, &mut self.scratch);
    }

    /// Half spectrum (bins `0..=N/2`) of a real signal, written to `out`
    /// (cleared and resized to `N/2 + 1`; empty input gives empty output).
    /// Even lengths use the packed [`RfftPlan`]; odd lengths fall back to a
    /// widened complex transform through the plan cache.
    pub fn rfft_half_into(&mut self, input: &[f64], out: &mut Vec<Cpx>) {
        let n = input.len();
        if n == 0 {
            out.clear();
            return;
        }
        if n % 2 == 0 {
            cache_metrics().rfft_calls.inc();
            let plan = self.rfft_plan(n);
            plan.process_with_scratch(input, out, &mut self.pack);
        } else {
            let plan = self.plan(n);
            let mut buf = std::mem::take(&mut self.pack);
            buf.clear();
            buf.extend(input.iter().map(|&x| Cpx::real(x)));
            plan.process_with_scratch(&mut buf, &mut self.scratch);
            out.clear();
            out.extend_from_slice(&buf[..n / 2 + 1]);
            self.pack = buf;
        }
    }

    /// Real signal (length `2·(spec.len() − 1)`) from its half spectrum,
    /// through the cached [`RfftPlan`]: the packed inverse of
    /// [`FftPlanner::rfft_half_into`], normalization included.
    ///
    /// # Panics
    /// Panics if `spec` has fewer than two bins (the shortest real plan is
    /// `n = 2`, i.e. a two-bin half spectrum).
    pub fn irfft_into(&mut self, spec: &[Cpx], out: &mut Vec<f64>) {
        assert!(
            spec.len() >= 2,
            "irfft needs at least two half-spectrum bins"
        );
        cache_metrics().irfft_calls.inc();
        let plan = self.rfft_plan(2 * (spec.len() - 1));
        plan.inverse(spec, out, &mut self.pack);
    }

    /// Full complex spectrum (length `N`) of a real signal: the half
    /// spectrum plus its conjugate mirror. Drop-in replacement for
    /// [`crate::fft::rfft`] at roughly half the transform work.
    pub fn rfft_full(&mut self, input: &[f64]) -> Vec<Cpx> {
        let n = input.len();
        let mut half = Vec::new();
        self.rfft_half_into(input, &mut half);
        let mut out = half;
        out.resize(n, Cpx::ZERO);
        for k in n / 2 + 1..n {
            out[k] = out[n - k].conj();
        }
        out
    }

    /// Lends a zeroed real buffer of length `len` alongside the planner, so
    /// callers can window/pack into reusable storage and transform it in one
    /// scope without allocating per call.
    pub fn with_real_scratch<R>(
        &mut self,
        len: usize,
        f: impl FnOnce(&mut FftPlanner, &mut Vec<f64>) -> R,
    ) -> R {
        let mut buf = std::mem::take(&mut self.real_scratch);
        buf.clear();
        buf.resize(len, 0.0);
        let r = f(self, &mut buf);
        self.real_scratch = buf;
        r
    }
}

thread_local! {
    static PLANNER: RefCell<FftPlanner> = RefCell::new(FftPlanner::new());
}

/// Runs `f` with this thread's planner. Every thread gets its own plan
/// cache, so worker pools (e.g. the streaming runtime's stages) share plans
/// within a thread and never contend across threads.
///
/// # Panics
/// Panics if called re-entrantly from within `f` (the planner is a single
/// `RefCell`); keep planner scopes flat.
pub fn with_planner<R>(f: impl FnOnce(&mut FftPlanner) -> R) -> R {
    PLANNER.with(|p| f(&mut p.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::reference;

    fn assert_close(a: &[Cpx], b: &[Cpx], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y} (tol {tol})");
        }
    }

    fn test_vec(n: usize) -> Vec<Cpx> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0;
                let y = ((i * 40503 + 7) % 1000) as f64 / 500.0 - 1.0;
                Cpx::new(x, y)
            })
            .collect()
    }

    #[test]
    fn plan_matches_reference_engine() {
        for &n in &[1usize, 2, 4, 8, 100, 255, 256, 1000] {
            let x = test_vec(n);
            let mut y = x.clone();
            FftPlan::new(n).process(&mut y);
            assert_close(&y, &reference::fft(&x), 1e-9 * (n.max(1) as f64));
        }
    }

    #[test]
    fn plan_inverse_round_trips() {
        let mut planner = FftPlanner::new();
        for &n in &[2usize, 8, 60, 128, 255] {
            let x = test_vec(n);
            let mut y = x.clone();
            planner.fft_in_place(&mut y);
            planner.ifft_in_place(&mut y);
            assert_close(&y, &x, 1e-9);
        }
    }

    #[test]
    fn planner_caches_plans() {
        let mut planner = FftPlanner::new();
        let a = planner.plan(64);
        let b = planner.plan(64);
        assert!(Rc::ptr_eq(&a, &b));
        // A Bluestein length's inner plan is shared with the pow2 cache.
        let _ = planner.plan(100); // inner m = 256
        let inner = planner.plan(256);
        assert_eq!(inner.len(), 256);
    }

    #[test]
    fn rfft_plan_matches_complex_transform() {
        let mut planner = FftPlanner::new();
        for &n in &[2usize, 4, 16, 64, 250, 1024] {
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 37 + 11) % 100) as f64 / 50.0 - 1.0)
                .collect();
            let mut half = Vec::new();
            planner.rfft_half_into(&x, &mut half);
            let mut full: Vec<Cpx> = x.iter().map(|&v| Cpx::real(v)).collect();
            planner.fft_in_place(&mut full);
            assert_close(&half, &full[..n / 2 + 1], 1e-9 * n as f64);
        }
    }

    #[test]
    fn rfft_full_mirrors_conjugate() {
        let mut planner = FftPlanner::new();
        for &n in &[8usize, 9, 64, 101] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let spec = planner.rfft_full(&x);
            assert_eq!(spec.len(), n);
            for k in 1..n {
                assert!((spec[k] - spec[n - k].conj()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn scratch_reuse_is_consistent() {
        // Same plan, same data, scratch carried across dissimilar calls.
        let mut planner = FftPlanner::new();
        let x = test_vec(100);
        let mut a = x.clone();
        planner.fft_in_place(&mut a);
        let mut warm = x.clone();
        planner.fft_in_place(&mut warm); // scratch now warm
        assert_close(&a, &warm, 0.0_f64.max(1e-300));
    }

    #[test]
    fn trivial_lengths() {
        let mut planner = FftPlanner::new();
        let mut empty: Vec<Cpx> = Vec::new();
        planner.fft_in_place(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![Cpx::new(2.0, 3.0)];
        planner.fft_in_place(&mut one);
        assert_eq!(one[0], Cpx::new(2.0, 3.0));
        let mut out = Vec::new();
        planner.rfft_half_into(&[], &mut out);
        assert!(out.is_empty());
        planner.rfft_half_into(&[5.0], &mut out);
        assert_eq!(out, vec![Cpx::real(5.0)]);
    }

    #[test]
    #[should_panic(expected = "plan is for length")]
    fn plan_rejects_wrong_length() {
        let plan = FftPlan::new(8);
        let mut x = vec![Cpx::ZERO; 4];
        plan.process(&mut x);
    }

    #[test]
    fn planned_4096_tone_leakage_below_1e9() {
        // Twiddle-accuracy regression: a pure bin-k tone transforms to a
        // single bin of magnitude N; every other bin is leakage. The
        // incremental-phasor reference degrades with N because its twiddles
        // accumulate rounding over n/2 successive multiplies; the table-based
        // plan must stay at the 1e-9 relative level (it sits near 1e-12).
        let n = 4096;
        let k = 517;
        let mut x: Vec<Cpx> = (0..n)
            .map(|i| Cpx::cis(TAU * k as f64 * i as f64 / n as f64))
            .collect();
        FftPlan::new(n).process(&mut x);
        let mut worst = 0.0f64;
        for (i, z) in x.iter().enumerate() {
            if i == k {
                assert!((z.abs() - n as f64).abs() / (n as f64) < 1e-9);
            } else {
                worst = worst.max(z.abs());
            }
        }
        let relative = worst / n as f64;
        assert!(relative <= 1e-9, "relative leakage {relative:e}");
    }
}
