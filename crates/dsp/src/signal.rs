//! Signal synthesis and noise generation.
//!
//! Deterministic generators (tones, linear chirps, square waves) plus a
//! self-contained Gaussian noise source. The noise source wraps a small
//! xorshift PRNG with a Box–Muller transform so that every Monte-Carlo run is
//! reproducible from a `u64` seed without threading `rand` generics through
//! the simulation layers (the higher-level crates that *do* need
//! distributions use the `rand` crate; this type exists for the hot loops).

use crate::TAU;

/// Generates `n` samples of `amp * cos(2 pi f t + phase)` at sample rate `fs`.
pub fn tone(n: usize, f: f64, fs: f64, amp: f64, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| amp * (TAU * f * i as f64 / fs + phase).cos())
        .collect()
}

/// Generates `n` samples of a real linear chirp starting at `f0` with sweep
/// rate `slope` Hz/s: `cos(2 pi (f0 t + slope t^2 / 2) + phase)`.
///
/// The instantaneous frequency at time `t` is `f0 + slope * t` — note the
/// conventional `t^2/2` phase term (see DESIGN.md §5 on the paper's eq. 1).
pub fn chirp(n: usize, f0: f64, slope: f64, fs: f64, amp: f64, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            amp * (TAU * (f0 * t + 0.5 * slope * t * t) + phase).cos()
        })
        .collect()
}

/// Generates `n` samples of a unipolar square wave (values 0/1) with the
/// given frequency, sample rate, and duty cycle in `(0, 1)`.
pub fn square_wave(n: usize, f: f64, fs: f64, duty: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let phase = (f * i as f64 / fs).fract();
            if phase < duty {
                1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// Generates a bipolar (±1) square wave.
pub fn square_wave_bipolar(n: usize, f: f64, fs: f64) -> Vec<f64> {
    square_wave(n, f, fs, 0.5)
        .into_iter()
        .map(|v| 2.0 * v - 1.0)
        .collect()
}

/// A seeded Gaussian noise generator (xorshift64* + Box–Muller).
#[derive(Debug, Clone)]
pub struct NoiseSource {
    state: u64,
    cached: Option<f64>,
}

impl NoiseSource {
    /// Creates a generator from a nonzero seed (zero is remapped).
    pub fn new(seed: u64) -> Self {
        NoiseSource {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
            cached: None,
        }
    }

    /// Next raw u64 from xorshift64*.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform sample in `(0, 1)` (never exactly 0, safe for `ln`).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
    }

    /// Standard normal sample via Box–Muller (caches the second deviate).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        let u1 = self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = TAU * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Gaussian sample with the given standard deviation.
    pub fn gaussian_scaled(&mut self, sigma: f64) -> f64 {
        self.gaussian() * sigma
    }

    /// Fills `n` samples of white Gaussian noise with standard deviation
    /// `sigma`.
    pub fn awgn(&mut self, n: usize, sigma: f64) -> Vec<f64> {
        (0..n).map(|_| self.gaussian() * sigma).collect()
    }

    /// Adds white Gaussian noise with standard deviation `sigma` to `signal`
    /// in place.
    pub fn add_awgn(&mut self, signal: &mut [f64], sigma: f64) {
        for s in signal.iter_mut() {
            *s += self.gaussian() * sigma;
        }
    }

    /// f32 variant of [`NoiseSource::add_awgn`] that draws the *identical*
    /// f64 Gaussian sequence (same generator state consumption, so f64 and
    /// f32 slabs with the same seed see the same noise realization) and adds
    /// each deviate rounded to f32. This is the kernel-test reference; the
    /// frame-rate f32 tier uses [`NoiseSource::add_awgn_f32_fast`] instead.
    pub fn add_awgn_f32(&mut self, signal: &mut [f32], sigma: f64) {
        for s in signal.iter_mut() {
            *s += (self.gaussian() * sigma) as f32;
        }
    }

    /// Fast standard normal sample: one uniform draw mapped through the
    /// inverse normal CDF (no `ln`/`sin`/`cos` on the ~97.6% central path).
    ///
    /// Consumes generator state differently from [`NoiseSource::gaussian`]
    /// (one `u64` per deviate, no cached second deviate), so the realization
    /// differs from Box–Muller for the same seed — but it is exactly as
    /// deterministic: same seed, same sequence, on every dispatch tier.
    #[inline]
    pub fn gaussian_fast(&mut self) -> f64 {
        inv_norm_cdf(self.uniform())
    }

    /// Fast AWGN for the f32 frame tier: [`NoiseSource::gaussian_fast`]
    /// deviates rounded once to f32. Roughly 4x cheaper per sample than the
    /// Box–Muller path, which otherwise dominates the f32 dechirp stage.
    pub fn add_awgn_f32_fast(&mut self, signal: &mut [f32], sigma: f64) {
        for s in signal.iter_mut() {
            *s += (self.gaussian_fast() * sigma) as f32;
        }
    }
}

/// Inverse of the standard normal CDF via Acklam's rational approximation
/// (|relative error| < 1.15e-9 over the open unit interval — far below the
/// f32 rounding the fast tier applies afterwards). The central region is
/// two degree-5 polynomials and one division; only the ~2.4% tail mass pays
/// for `ln`/`sqrt`.
#[inline]
fn inv_norm_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

/// Noise standard deviation that yields the requested SNR (dB) against a
/// signal of the given RMS level: `sigma = rms / 10^(snr/20)`.
pub fn sigma_for_snr(signal_rms: f64, snr_db: f64) -> f64 {
    signal_rms / 10f64.powf(snr_db / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, rms, std_dev};

    #[test]
    fn tone_properties() {
        let x = tone(1000, 50.0, 1000.0, 2.0, 0.0);
        assert_eq!(x[0], 2.0);
        // RMS of a sinusoid is amp/sqrt(2).
        assert!((rms(&x) - 2.0 / 2f64.sqrt()).abs() < 0.01);
    }

    #[test]
    fn chirp_instantaneous_frequency() {
        // Verify numerically: phase difference between adjacent samples
        // approximates instantaneous frequency f0 + slope*t.
        let fs = 1e6;
        let f0 = 1e3;
        let slope = 1e8; // 100 Hz per microsecond
        let n = 1000;
        let x = chirp(n, f0, slope, fs, 1.0, 0.0);
        // Find zero crossings and check spacing shrinks over time.
        let crossings: Vec<usize> = (1..n).filter(|&i| x[i - 1] < 0.0 && x[i] >= 0.0).collect();
        assert!(crossings.len() > 3);
        let first_gap = crossings[1] - crossings[0];
        let last_gap = crossings[crossings.len() - 1] - crossings[crossings.len() - 2];
        assert!(
            last_gap < first_gap,
            "chirp should speed up: {first_gap} -> {last_gap}"
        );
    }

    #[test]
    fn chirp_matches_tone_when_slope_zero() {
        let a = chirp(256, 100.0, 0.0, 1000.0, 1.0, 0.3);
        let b = tone(256, 100.0, 1000.0, 1.0, 0.3);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn square_wave_duty_cycle() {
        let x = square_wave(1000, 10.0, 1000.0, 0.25);
        let high = x.iter().filter(|&&v| v == 1.0).count();
        assert!((high as f64 / 1000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn square_wave_bipolar_is_pm_one() {
        let x = square_wave_bipolar(100, 5.0, 100.0);
        assert!(x.iter().all(|&v| v == 1.0 || v == -1.0));
        assert!((mean(&x)).abs() < 0.05);
    }

    #[test]
    fn noise_is_reproducible() {
        let mut a = NoiseSource::new(42);
        let mut b = NoiseSource::new(42);
        for _ in 0..100 {
            assert_eq!(a.gaussian(), b.gaussian());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseSource::new(1);
        let mut b = NoiseSource::new(2);
        let same = (0..32).filter(|_| a.gaussian() == b.gaussian()).count();
        assert!(same < 2);
    }

    #[test]
    fn gaussian_moments() {
        let mut src = NoiseSource::new(7);
        let x = src.awgn(200_000, 1.0);
        assert!(mean(&x).abs() < 0.01, "mean {}", mean(&x));
        assert!((std_dev(&x) - 1.0).abs() < 0.01, "std {}", std_dev(&x));
    }

    #[test]
    fn gaussian_scaled_std() {
        let mut src = NoiseSource::new(9);
        let x: Vec<f64> = (0..100_000).map(|_| src.gaussian_scaled(3.0)).collect();
        assert!((std_dev(&x) - 3.0).abs() < 0.05);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut src = NoiseSource::new(11);
        for _ in 0..10_000 {
            let u = src.uniform();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn add_awgn_changes_signal() {
        let mut src = NoiseSource::new(3);
        let mut x = vec![0.0; 1000];
        src.add_awgn(&mut x, 0.5);
        assert!((std_dev(&x) - 0.5).abs() < 0.05);
    }

    #[test]
    fn sigma_for_snr_values() {
        // 0 dB: sigma == rms.
        assert!((sigma_for_snr(1.0, 0.0) - 1.0).abs() < 1e-12);
        // 20 dB: sigma = rms / 10.
        assert!((sigma_for_snr(1.0, 20.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn achieved_snr_matches_request() {
        let fs = 10_000.0;
        let sig = tone(50_000, 1000.0, fs, 1.0, 0.0);
        let target_db = 10.0;
        let sigma = sigma_for_snr(rms(&sig), target_db);
        let mut src = NoiseSource::new(5);
        let noise = src.awgn(sig.len(), sigma);
        let p_sig = rms(&sig).powi(2);
        let p_noise = rms(&noise).powi(2);
        let snr_db = 10.0 * (p_sig / p_noise).log10();
        assert!((snr_db - target_db).abs() < 0.2, "snr {snr_db}");
    }

    #[test]
    fn gaussian_fast_moments() {
        let mut src = NoiseSource::new(17);
        let x: Vec<f64> = (0..200_000).map(|_| src.gaussian_fast()).collect();
        assert!(mean(&x).abs() < 0.01, "mean {}", mean(&x));
        assert!((std_dev(&x) - 1.0).abs() < 0.01, "std {}", std_dev(&x));
    }

    #[test]
    fn gaussian_fast_is_reproducible() {
        let mut a = NoiseSource::new(23);
        let mut b = NoiseSource::new(23);
        for _ in 0..1000 {
            assert_eq!(a.gaussian_fast(), b.gaussian_fast());
        }
    }

    #[test]
    fn inv_norm_cdf_matches_known_quantiles() {
        // Central branch, both tail branches.
        for (p, z) in [
            (0.5, 0.0),
            (0.8413447460685429, 1.0),
            (0.15865525393145707, -1.0),
            (0.0013498980316300933, -3.0),
            (0.9986501019683699, 3.0),
        ] {
            assert!(
                (inv_norm_cdf(p) - z).abs() < 1e-7,
                "quantile({p}) = {} want {z}",
                inv_norm_cdf(p)
            );
        }
    }

    #[test]
    fn add_awgn_f32_fast_statistics() {
        let mut src = NoiseSource::new(29);
        let mut x = vec![0.0f32; 100_000];
        src.add_awgn_f32_fast(&mut x, 0.5);
        let wide: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        assert!(mean(&wide).abs() < 0.01);
        assert!((std_dev(&wide) - 0.5).abs() < 0.01);
    }

    #[test]
    fn zero_seed_remapped() {
        let mut src = NoiseSource::new(0);
        // Must not get stuck at zero.
        assert!(src.gaussian().is_finite());
        assert_ne!(src.uniform(), src.uniform());
    }
}
