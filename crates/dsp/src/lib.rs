//! # biscatter-dsp — digital signal processing substrate
//!
//! Self-contained DSP building blocks used throughout the BiScatter
//! reproduction. Everything here is implemented from scratch (no external
//! DSP dependencies): a complex-number type, FFTs (radix-2 and Bluestein for
//! arbitrary lengths), window functions, the Goertzel algorithm, FIR/IIR
//! filters, resampling, spectral estimation, statistics, and signal
//! synthesis/noise generation.
//!
//! Design goals follow the smoltcp school: simplicity and robustness over
//! cleverness, explicit data flow, and extensive documentation. All routines
//! are pure functions or small stateful structs with no hidden globals, so
//! they compose freely inside the higher-level radar/tag simulations.
//!
//! ## Module map
//!
//! | module | contents |
//! |---|---|
//! | [`arena`] | reusable buffer pools (`Pool`/`Lease`) for the zero-allocation frame path |
//! | [`complex`] | `Cpx` complex number type and arithmetic |
//! | [`fft`] | radix-2 Cooley–Tukey and Bluestein FFT/IFFT, real-input helper |
//! | [`planner`] | cached FFT plans, in-place/scratch APIs, packed real FFT |
//! | [`window`] | Hann, Hamming, Blackman(-Harris), Kaiser, flat-top windows |
//! | [`goertzel`] | single-bin DFT evaluation, sliding Goertzel, filter banks |
//! | [`filter`] | windowed-sinc FIR design, biquad IIR, RC single-pole, moving average |
//! | [`resample`] | linear interpolation, grid rescaling, decimation |
//! | [`spectrum`] | periodogram, peak search, parabolic interpolation, noise floor, SNR |
//! | [`stft`] | short-time Fourier transform / spectrogram |
//! | [`stats`] | mean/variance, dB conversions, erfc/Q-function, theoretical BER |
//! | [`signal`] | tone/chirp/square synthesis, AWGN, utility generators |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod complex;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod planner;
pub mod resample;
pub mod signal;
pub mod spectrum;
pub mod stats;
pub mod stft;
pub mod window;

pub use complex::Cpx;

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Two pi, the circle constant for phase arithmetic.
pub const TAU: f64 = std::f64::consts::TAU;
