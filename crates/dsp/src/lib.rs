//! # biscatter-dsp — digital signal processing substrate
//!
//! Self-contained DSP building blocks used throughout the BiScatter
//! reproduction. Everything here is implemented from scratch (no external
//! DSP dependencies): a complex-number type, FFTs (radix-2 and Bluestein for
//! arbitrary lengths), window functions, the Goertzel algorithm, FIR/IIR
//! filters, resampling, spectral estimation, statistics, and signal
//! synthesis/noise generation.
//!
//! Design goals follow the smoltcp school: simplicity and robustness over
//! cleverness, explicit data flow, and extensive documentation. All routines
//! are pure functions or small stateful structs with no hidden globals, so
//! they compose freely inside the higher-level radar/tag simulations.
//!
//! ## Module map
//!
//! | module | contents |
//! |---|---|
//! | [`arena`] | reusable buffer pools (`Pool`/`Lease`) for the zero-allocation frame path |
//! | [`complex`] | `Cpx` complex number type and arithmetic |
//! | [`c32`] | `Cpx32` single-precision complex type for the f32 fast tier |
//! | [`dispatch`] | runtime SIMD tier selection (`BISCATTER_SIMD`, CPU detection) |
//! | [`simd`] | scalar/AVX2 kernel bodies for the frame hot loops |
//! | [`fft`] | radix-2 Cooley–Tukey and Bluestein FFT/IFFT, real-input helper |
//! | [`planner`] | cached FFT plans, in-place/scratch APIs, packed real FFT |
//! | [`fft32`] | f32 forward-only radix-2 plans for the fast tier |
//! | [`window`] | Hann, Hamming, Blackman(-Harris), Kaiser, flat-top windows |
//! | [`goertzel`] | single-bin DFT evaluation, sliding Goertzel, filter banks |
//! | [`filter`] | windowed-sinc FIR design, biquad IIR, RC single-pole, moving average |
//! | [`resample`] | linear interpolation, grid rescaling, decimation |
//! | [`spectrum`] | periodogram, peak search, parabolic interpolation, noise floor, SNR |
//! | [`stft`] | short-time Fourier transform / spectrogram |
//! | [`stats`] | mean/variance, dB conversions, erfc/Q-function, theoretical BER |
//! | [`signal`] | tone/chirp/square synthesis, AWGN, utility generators |
//!
//! ## Unsafe policy
//!
//! The crate is `deny(unsafe_code)`; the single exemption is [`simd`],
//! whose AVX2 bodies require `std::arch` intrinsics. Every `unsafe` there
//! sits behind runtime feature detection ([`dispatch`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod c32;
pub mod complex;
pub mod dispatch;
pub mod fft;
pub mod fft32;
pub mod filter;
pub mod goertzel;
pub mod planner;
pub mod resample;
pub mod signal;
#[allow(unsafe_code)]
pub mod simd;
pub mod spectrum;
pub mod stats;
pub mod stft;
pub mod window;

pub use c32::Cpx32;
pub use complex::Cpx;
pub use dispatch::SimdTier;

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Two pi, the circle constant for phase arithmetic.
pub const TAU: f64 = std::f64::consts::TAU;
