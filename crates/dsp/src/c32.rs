//! Single-precision complex numbers for the f32 fast tier.
//!
//! [`Cpx32`] mirrors [`crate::complex::Cpx`] at half the width. It exists
//! for the opt-in f32 frame path (`BISCATTER` precision tier), where the
//! range/Doppler FFTs and the dechirp oscillator run in single precision
//! and are validated against the f64 oracle by error bounds rather than bit
//! equality. Geometry (ranges, phases, grids) stays in f64 everywhere; only
//! the bulk per-sample arithmetic drops to f32 — which is why the
//! constructors that matter take f64 inputs and round once
//! ([`Cpx32::from_f64`], [`Cpx32::cis`]).

use crate::complex::Cpx;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i*im` in single precision.
///
/// `#[repr(C)]` so the AVX2 kernels may reinterpret `&[Cpx32]` as packed
/// `re, im` pairs of `f32`.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cpx32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Cpx32 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Cpx32 = Cpx32 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Cpx32 = Cpx32 { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular parts.
    #[inline]
    pub const fn new(re: f32, im: f32) -> Self {
        Cpx32 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f32) -> Self {
        Cpx32 { re, im: 0.0 }
    }

    /// Rounds a double-precision value to single precision — the one place
    /// the f32 tier loses accuracy, so tables (twiddles, phasors) are
    /// computed exactly in f64 and converted once here.
    #[inline]
    pub fn from_f64(z: Cpx) -> Self {
        Cpx32::new(z.re as f32, z.im as f32)
    }

    /// Widens back to double precision (exact).
    #[inline]
    pub fn to_f64(self) -> Cpx {
        Cpx::new(self.re as f64, self.im as f64)
    }

    /// `e^{i*theta}`: evaluated in f64 and rounded once, so the phasor's
    /// angle error is one f32 ulp rather than a sin/cos of a rounded angle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Cpx32::from_f64(Cpx::cis(theta))
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cpx32::new(self.re, -self.im)
    }

    /// Squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f32) -> Self {
        Cpx32::new(self.re * k, self.im * k)
    }
}

impl Add for Cpx32 {
    type Output = Cpx32;
    #[inline]
    fn add(self, rhs: Cpx32) -> Cpx32 {
        Cpx32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Cpx32 {
    type Output = Cpx32;
    #[inline]
    fn sub(self, rhs: Cpx32) -> Cpx32 {
        Cpx32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Cpx32 {
    type Output = Cpx32;
    #[inline]
    fn mul(self, rhs: Cpx32) -> Cpx32 {
        Cpx32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Cpx32 {
    type Output = Cpx32;
    #[inline]
    fn neg(self) -> Cpx32 {
        Cpx32::new(-self.re, -self.im)
    }
}

impl AddAssign for Cpx32 {
    #[inline]
    fn add_assign(&mut self, rhs: Cpx32) {
        *self = *self + rhs;
    }
}

impl SubAssign for Cpx32 {
    #[inline]
    fn sub_assign(&mut self, rhs: Cpx32) {
        *self = *self - rhs;
    }
}

impl MulAssign for Cpx32 {
    #[inline]
    fn mul_assign(&mut self, rhs: Cpx32) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_ops_match_f64() {
        let a = Cpx32::new(1.5, -2.25);
        let b = Cpx32::new(-0.5, 3.0);
        let (a64, b64) = (a.to_f64(), b.to_f64());
        assert_eq!((a * b).to_f64(), a64 * b64); // exact: products fit f32
        assert_eq!((a + b).to_f64(), a64 + b64);
        assert_eq!((a - b).to_f64(), a64 - b64);
        assert_eq!(a.conj().im, 2.25);
        assert_eq!(a.norm_sq(), 1.5 * 1.5 + 2.25 * 2.25);
    }

    #[test]
    fn cis_rounds_once_from_f64() {
        let z = Cpx32::cis(1.0);
        assert_eq!(z.re, (1.0f64.cos()) as f32);
        assert_eq!(z.im, (1.0f64.sin()) as f32);
        assert!((z.norm_sq() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[allow(unsafe_code)] // layout probe: reads through a raw f32 pointer
    fn layout_is_interleaved_pairs() {
        assert_eq!(std::mem::size_of::<Cpx32>(), 8);
        let v = [Cpx32::new(1.0, 2.0), Cpx32::new(3.0, 4.0)];
        let base = v.as_ptr() as *const f32;
        // repr(C): re at offset 0, im at offset 1, per element.
        unsafe {
            assert_eq!(*base, 1.0);
            assert_eq!(*base.add(1), 2.0);
            assert_eq!(*base.add(3), 4.0);
        }
    }
}
