//! Reusable buffer pools for the zero-allocation frame path.
//!
//! Steady-state frame processing must not touch the heap (DESIGN.md §10):
//! every large intermediate — IF sample slabs, aligned profiles,
//! range–Doppler maps — is checked out of a [`Pool`] as a [`Lease`] and
//! returned automatically on drop. The first few frames populate the free
//! lists (warm-up); after that every checkout is a `Vec::pop` and every
//! return a `Vec::push` within existing capacity.
//!
//! Pools are `Arc`-internal and thread-safe, so leases can flow through the
//! runtime pipeline's queues and be returned from a different thread than
//! the one that checked them out.
//!
//! Pools built with [`Pool::named`] additionally publish lease hit/miss
//! counters and an outstanding-lease high-water gauge into the
//! [`biscatter_obs`] registry (`arena.<name>.*`), so a streaming run can
//! prove its free lists actually recycle; anonymous [`Pool::new`] pools
//! stay metric-free. The stat updates are relaxed atomics — no extra
//! locking, no allocation on the lease path.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use biscatter_obs::metrics::{Counter, Gauge};

/// Registry handles plus the live outstanding-lease count for one named
/// pool.
struct PoolStats {
    hits: Counter,
    misses: Counter,
    outstanding: AtomicU64,
    outstanding_hiwat: Gauge,
}

struct PoolInner<T> {
    free: Mutex<Vec<T>>,
    stats: Option<PoolStats>,
}

/// A free-list of reusable `T` values. Cloning the pool clones the handle,
/// not the buffers — all clones share one free list.
pub struct Pool<T> {
    inner: Arc<PoolInner<T>>,
}

impl<T> Clone for Pool<T> {
    fn clone(&self) -> Self {
        Pool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for Pool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("idle", &self.idle()).finish()
    }
}

impl<T> Pool<T> {
    /// Creates an empty pool with no registry metrics.
    pub fn new() -> Self {
        Pool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                stats: None,
            }),
        }
    }

    /// Creates an empty pool that reports `arena.<name>.lease_hits`,
    /// `arena.<name>.lease_misses`, and the `arena.<name>.outstanding_hiwat`
    /// gauge to the global metric registry. Pools sharing a name share the
    /// registry cells (their stats sum).
    pub fn named(name: &str) -> Self {
        Self::named_at(&format!("arena.{name}"))
    }

    /// Like [`Pool::named`] but takes the full registry base name instead of
    /// prepending `arena.`. This is how a multi-cell process keeps pools
    /// from colliding: cell 3's pipeline registers its pools at
    /// `cell3.arena.isac.*` while a standalone run keeps the legacy
    /// unscoped `arena.isac.*` names.
    pub fn named_at(base: &str) -> Self {
        let r = biscatter_obs::registry();
        Pool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                stats: Some(PoolStats {
                    hits: r.counter(&format!("{base}.lease_hits")),
                    misses: r.counter(&format!("{base}.lease_misses")),
                    outstanding: AtomicU64::new(0),
                    outstanding_hiwat: r.gauge(&format!("{base}.outstanding_hiwat")),
                }),
            }),
        }
    }

    /// Checks a value out of the free list, or builds one with `make` when
    /// the list is empty (the warm-up path). The lease returns the value to
    /// this pool when dropped.
    pub fn take_or(&self, make: impl FnOnce() -> T) -> Lease<T> {
        let value = self.inner.free.lock().unwrap().pop();
        if let Some(stats) = &self.inner.stats {
            if value.is_some() {
                stats.hits.inc();
            } else {
                stats.misses.inc();
            }
            let now = stats.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
            stats.outstanding_hiwat.set_max(now as f64);
        }
        Lease {
            value: Some(value.unwrap_or_else(make)),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Number of values currently sitting in the free list.
    pub fn idle(&self) -> usize {
        self.inner.free.lock().unwrap().len()
    }
}

/// An exclusively-owned value checked out of a [`Pool`]; dereferences to
/// `T` and returns the value to its pool on drop.
pub struct Lease<T> {
    value: Option<T>,
    pool: Arc<PoolInner<T>>,
}

impl<T> Lease<T> {
    /// Detaches the value from its pool (it will not be returned).
    pub fn into_inner(mut self) -> T {
        self.value.take().expect("lease already emptied")
    }
}

impl<T> Deref for Lease<T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value.as_ref().expect("lease already emptied")
    }
}

impl<T> DerefMut for Lease<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("lease already emptied")
    }
}

impl<T> Drop for Lease<T> {
    fn drop(&mut self) {
        // The lease ends here whether the value is returned or was detached
        // by into_inner, so the outstanding count always decrements once.
        if let Some(stats) = &self.pool.stats {
            stats.outstanding.fetch_sub(1, Ordering::Relaxed);
        }
        if let Some(value) = self.value.take() {
            self.pool.free.lock().unwrap().push(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_returns_on_drop() {
        let pool: Pool<Vec<f64>> = Pool::new();
        assert_eq!(pool.idle(), 0);
        {
            let mut a = pool.take_or(|| vec![0.0; 8]);
            a[0] = 1.0;
        }
        assert_eq!(pool.idle(), 1);
        // Second checkout reuses the same buffer (contents preserved —
        // callers must clear/overwrite).
        let b = pool.take_or(|| vec![0.0; 99]);
        assert_eq!(b.len(), 8);
        assert_eq!(b[0], 1.0);
    }

    #[test]
    fn into_inner_detaches() {
        let pool: Pool<Vec<u8>> = Pool::new();
        let v = pool.take_or(|| vec![1, 2, 3]).into_inner();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn clones_share_free_list() {
        let pool: Pool<String> = Pool::new();
        let clone = pool.clone();
        drop(pool.take_or(|| "x".to_string()));
        assert_eq!(clone.idle(), 1);
        let got = clone.take_or(|| "y".to_string());
        assert_eq!(&*got, "x");
    }

    #[test]
    fn leases_cross_threads() {
        let pool: Pool<Vec<f64>> = Pool::new();
        let lease = pool.take_or(|| vec![7.0; 4]);
        let pool2 = pool.clone();
        std::thread::spawn(move || drop(lease)).join().unwrap();
        assert_eq!(pool2.idle(), 1);
    }

    #[test]
    fn named_pool_reports_hits_misses_and_hiwat() {
        let pool: Pool<Vec<u8>> = Pool::named("test.arena_unit");
        let snap = || biscatter_obs::registry().snapshot();
        let base_hits = snap().counter("arena.test.arena_unit.lease_hits").unwrap();
        let base_misses = snap()
            .counter("arena.test.arena_unit.lease_misses")
            .unwrap();

        let a = pool.take_or(|| vec![0; 4]); // miss
        let b = pool.take_or(|| vec![0; 4]); // miss, 2 outstanding
        drop(a);
        drop(b);
        let c = pool.take_or(|| vec![0; 4]); // hit
        drop(c);

        let s = snap();
        assert_eq!(
            s.counter("arena.test.arena_unit.lease_hits"),
            Some(base_hits + 1)
        );
        assert_eq!(
            s.counter("arena.test.arena_unit.lease_misses"),
            Some(base_misses + 2)
        );
        assert!(s.gauge("arena.test.arena_unit.outstanding_hiwat").unwrap() >= 2.0);
    }
}
