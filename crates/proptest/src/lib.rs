//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! This workspace must build in network-restricted environments where the
//! real crate cannot be downloaded, so this crate provides the (small) API
//! subset the test suites actually use: the [`proptest!`] macro, range and
//! tuple strategies, `any::<T>()`, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, `prop_map` / `prop_filter_map`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * cases are generated from a PRNG seeded by the test's name, so every run
//!   (and CI) sees the same deterministic case set;
//! * no shrinking — a failing case panics with its values via the assert
//!   message;
//! * `proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

/// Number of cases each `proptest!` test runs.
pub const CASES: usize = 64;

/// Deterministic splitmix64-based PRNG.
pub mod rng {
    /// Small deterministic PRNG (splitmix64 core).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary byte string (e.g. the test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use super::rng::TestRng;

    /// A generator of test values.
    pub trait Strategy: Sized {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Maps and filters; regenerates until the closure returns `Some`.
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F> {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }

        /// Filters; regenerates until the predicate holds.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F> {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..1000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map exhausted retries: {}", self.whence);
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.whence);
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as u64) - (lo as u64) + 1;
                    lo + (rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

    /// Strategy for "any value" of a primitive type.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types usable with [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — an unconstrained value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// `prop::collection` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;

        /// A `Vec` strategy with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut crate::rng::TestRng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// The `proptest::prelude` re-exports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Declares property-based tests: each runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let strategies = ($(&$strat,)*);
                let mut rng = $crate::rng::TestRng::from_name(stringify!($name));
                for _case in 0..$crate::CASES {
                    #[allow(unused_variables)]
                    let ($($arg,)*) = {
                        let ($($arg,)*) = &strategies;
                        ($($crate::strategy::Strategy::generate(*$arg, &mut rng),)*)
                    };
                    $body
                }
            }
        )*
    };
}
