//! Property-based tests of the RF substrate: waveform identities, channel
//! monotonicity, component model invariants.

use biscatter_rf::channel::{fspl_db, OneWayLink, TwoWayLink};
use biscatter_rf::chirp::Chirp;
use biscatter_rf::components::delay_line::{DelayLine, DelayLinePair};
use biscatter_rf::frame::{ChirpTrain, MAX_DUTY};
use biscatter_rf::scene::TagModulation;
use proptest::prelude::*;

fn arb_chirp() -> impl Strategy<Value = Chirp> {
    (1e9f64..30e9, 100e6f64..4e9, 10e-6f64..300e-6).prop_map(|(f0, b, t)| Chirp::new(f0, b, t))
}

proptest! {
    #[test]
    fn chirp_phase_derivative_is_instantaneous_freq(
        chirp in arb_chirp(),
        frac in 0.05f64..0.95,
    ) {
        let t = frac * chirp.duration;
        let dt = chirp.duration * 1e-7;
        let f_num = (chirp.phase(t + dt) - chirp.phase(t - dt))
            / (2.0 * dt)
            / std::f64::consts::TAU;
        let f_ana = chirp.instantaneous_freq(t);
        prop_assert!((f_num - f_ana).abs() / f_ana < 1e-5);
    }

    #[test]
    fn chirp_beat_range_roundtrip(chirp in arb_chirp(), r in 0.1f64..100.0) {
        let f = chirp.beat_freq_for_range(r);
        prop_assert!((chirp.range_for_beat_freq(f) - r).abs() < 1e-9);
        prop_assert!(f > 0.0);
    }

    #[test]
    fn chirp_sweep_covers_bandwidth(chirp in arb_chirp()) {
        let start = chirp.instantaneous_freq(0.0);
        let stop = chirp.instantaneous_freq(chirp.duration);
        prop_assert!((stop - start - chirp.bandwidth).abs() / chirp.bandwidth < 1e-9);
    }

    #[test]
    fn fspl_monotone_in_distance_and_frequency(
        d1 in 0.1f64..100.0,
        scale in 1.01f64..10.0,
        f in 1e9f64..80e9,
    ) {
        prop_assert!(fspl_db(d1 * scale, f) > fspl_db(d1, f));
        prop_assert!(fspl_db(d1, f * scale) > fspl_db(d1, f));
    }

    #[test]
    fn one_way_link_power_decreases(
        d in 0.5f64..50.0,
        tx in -10.0f64..20.0,
        g in 0.0f64..20.0,
    ) {
        let link = OneWayLink {
            tx_power_dbm: tx,
            tx_gain_dbi: g,
            rx_gain_dbi: g,
            freq_hz: 9.5e9,
        };
        prop_assert!(link.rx_power_dbm(d * 2.0) < link.rx_power_dbm(d));
        // Doubling distance costs exactly 6.02 dB one-way.
        let drop = link.rx_power_dbm(d) - link.rx_power_dbm(d * 2.0);
        prop_assert!((drop - 6.0206).abs() < 1e-6);
    }

    #[test]
    fn two_way_link_slope_is_40db_per_decade(
        d in 0.5f64..20.0,
        rcs in -40.0f64..10.0,
    ) {
        let link = TwoWayLink {
            tx_power_dbm: 7.0,
            radar_gain_dbi: 10.0,
            freq_hz: 9.5e9,
            tag_rcs_dbsm: rcs,
            misc_loss_db: 5.0,
        };
        let drop = link.rx_power_dbm(d) - link.rx_power_dbm(d * 10.0);
        prop_assert!((drop - 40.0).abs() < 1e-6);
    }

    #[test]
    fn delay_pair_beat_matches_eq11(
        delta_l in 0.05f64..3.0,
        b in 100e6f64..2e9,
        t in 10e-6f64..300e-6,
    ) {
        let pair = DelayLinePair::from_difference(DelayLine::coax(0.0, 9.5e9), 0.1, delta_l);
        let measured = pair.beat_freq(b, t);
        let expected = b * delta_l / (t * 0.7 * 299_792_458.0);
        prop_assert!((measured - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn train_respects_duty_constraint(
        durations in prop::collection::vec(10e-6f64..96e-6, 1..32),
    ) {
        let period = 120e-6;
        let chirps: Vec<Chirp> = durations.iter().map(|&d| Chirp::new(9e9, 1e9, d)).collect();
        let result = ChirpTrain::with_fixed_period(&chirps, period);
        let max_dur = durations.iter().cloned().fold(0.0, f64::max);
        if max_dur <= MAX_DUTY * period + 1e-15 {
            let train = result.unwrap();
            prop_assert!(train.is_uniform_period(1e-12));
            prop_assert!((train.duration() - period * durations.len() as f64).abs() < 1e-9);
        } else {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn modulation_reflectivity_bounded(
        t in 0.0f64..1.0,
        freq in 10.0f64..100e3,
        duty in 0.01f64..0.99,
        leak in 0.0f64..0.2,
    ) {
        let m = TagModulation::Subcarrier { freq_hz: freq, duty };
        let r = m.reflectivity(t, leak);
        prop_assert!(r == 1.0 || r == leak);
    }

    #[test]
    fn subcarrier_duty_cycle_measured(
        freq in 100.0f64..10e3,
        duty in 0.1f64..0.9,
    ) {
        let m = TagModulation::Subcarrier { freq_hz: freq, duty };
        let n = 20_000;
        let span = 20.0 / freq; // 20 cycles
        let on = (0..n)
            .filter(|&i| m.reflectivity(i as f64 * span / n as f64, 0.0) == 1.0)
            .count();
        let measured = on as f64 / n as f64;
        prop_assert!((measured - duty).abs() < 0.02, "duty {} vs {}", measured, duty);
    }
}
