//! Chirp trains: fixed-period slots with inter-chirp delays.
//!
//! BiScatter's packet structure (paper §3.1, Fig. 3) keeps a constant chirp
//! *period* `T_period` so that every downlink bit occupies the same wall-clock
//! slot regardless of its chirp duration. Each slot holds one chirp of
//! duration `T_chirp ≤ 0.8 · T_period` (the commercial-radar minimum
//! inter-chirp delay constraint \[18]) followed by an idle gap
//! `T_interC = T_period − T_chirp`.

use crate::chirp::Chirp;

/// Maximum fraction of the chirp period a sweep may occupy (paper §3.1).
pub const MAX_DUTY: f64 = 0.8;

/// One slot of a chirp train: a chirp plus its trailing inter-chirp delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChirpSlot {
    /// The chirp transmitted in this slot.
    pub chirp: Chirp,
    /// Idle time after the sweep, seconds.
    pub inter_delay: f64,
}

impl ChirpSlot {
    /// Total slot duration (`T_period`).
    pub fn period(&self) -> f64 {
        self.chirp.duration + self.inter_delay
    }
}

/// A frame: a sequence of equal-period slots, as emitted by the radar for one
/// packet (or one sensing burst).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChirpTrain {
    slots: Vec<ChirpSlot>,
}

impl ChirpTrain {
    /// Creates an empty train.
    pub fn new() -> Self {
        ChirpTrain::default()
    }

    /// Builds a train of chirps on a fixed period. Each chirp's inter-chirp
    /// delay is chosen as `T_period − T_chirp`.
    ///
    /// # Errors
    /// Returns an error naming the offending chirp if any duration exceeds
    /// `MAX_DUTY * period`.
    pub fn with_fixed_period(chirps: &[Chirp], period: f64) -> Result<Self, FrameError> {
        let mut train = ChirpTrain::new();
        for (i, &c) in chirps.iter().enumerate() {
            if c.duration > MAX_DUTY * period + 1e-15 {
                return Err(FrameError::DutyExceeded {
                    index: i,
                    duration: c.duration,
                    period,
                });
            }
            train.slots.push(ChirpSlot {
                chirp: c,
                inter_delay: period - c.duration,
            });
        }
        Ok(train)
    }

    /// Appends a slot.
    pub fn push(&mut self, slot: ChirpSlot) {
        self.slots.push(slot);
    }

    /// The slots in transmission order.
    pub fn slots(&self) -> &[ChirpSlot] {
        &self.slots
    }

    /// Number of chirps in the train.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the train holds no chirps.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total on-air duration of the train.
    pub fn duration(&self) -> f64 {
        self.slots.iter().map(|s| s.period()).sum()
    }

    /// Start time of slot `i` relative to the train start.
    pub fn slot_start(&self, i: usize) -> f64 {
        self.slots[..i].iter().map(|s| s.period()).sum()
    }

    /// Iterates `(start_time, slot)` pairs.
    pub fn iter_timed(&self) -> impl Iterator<Item = (f64, &ChirpSlot)> {
        let mut t = 0.0;
        self.slots.iter().map(move |s| {
            let start = t;
            t += s.period();
            (start, s)
        })
    }

    /// True if every slot has the same period (within `tol` seconds).
    pub fn is_uniform_period(&self, tol: f64) -> bool {
        match self.slots.first() {
            None => true,
            Some(first) => {
                let p = first.period();
                self.slots.iter().all(|s| (s.period() - p).abs() <= tol)
            }
        }
    }
}

/// Errors constructing a chirp train.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// A chirp's duration exceeded the `MAX_DUTY` fraction of the period.
    DutyExceeded {
        /// Index of the offending chirp.
        index: usize,
        /// Its duration, seconds.
        duration: f64,
        /// The slot period, seconds.
        period: f64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::DutyExceeded {
                index,
                duration,
                period,
            } => write!(
                f,
                "chirp {index} duration {duration:.3e}s exceeds {MAX_DUTY} of period {period:.3e}s"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn chirp(dur_us: f64) -> Chirp {
        Chirp::new(9e9, 1e9, dur_us * 1e-6)
    }

    #[test]
    fn fixed_period_fills_delays() {
        let train = ChirpTrain::with_fixed_period(&[chirp(20.0), chirp(50.0), chirp(96.0)], 120e-6)
            .unwrap();
        assert_eq!(train.len(), 3);
        for slot in train.slots() {
            assert!((slot.period() - 120e-6).abs() < 1e-12);
        }
        assert!((train.slots()[0].inter_delay - 100e-6).abs() < 1e-12);
        assert!(train.is_uniform_period(1e-12));
    }

    #[test]
    fn duty_limit_enforced() {
        // 0.8 * 120 us = 96 us; 97 us must fail.
        let err = ChirpTrain::with_fixed_period(&[chirp(97.0)], 120e-6).unwrap_err();
        match err {
            FrameError::DutyExceeded { index, .. } => assert_eq!(index, 0),
        }
        // Exactly at the limit is allowed.
        assert!(ChirpTrain::with_fixed_period(&[chirp(96.0)], 120e-6).is_ok());
    }

    #[test]
    fn duration_and_slot_start() {
        let train = ChirpTrain::with_fixed_period(&[chirp(20.0), chirp(30.0)], 120e-6).unwrap();
        assert!((train.duration() - 240e-6).abs() < 1e-12);
        assert_eq!(train.slot_start(0), 0.0);
        assert!((train.slot_start(1) - 120e-6).abs() < 1e-12);
    }

    #[test]
    fn iter_timed_matches_slot_start() {
        let train = ChirpTrain::with_fixed_period(&[chirp(20.0), chirp(30.0), chirp(40.0)], 120e-6)
            .unwrap();
        for (i, (t, _)) in train.iter_timed().enumerate() {
            assert!((t - train.slot_start(i)).abs() < 1e-15);
        }
    }

    #[test]
    fn empty_train() {
        let train = ChirpTrain::new();
        assert!(train.is_empty());
        assert_eq!(train.duration(), 0.0);
        assert!(train.is_uniform_period(0.0));
    }

    #[test]
    fn non_uniform_detected() {
        let mut train = ChirpTrain::new();
        train.push(ChirpSlot {
            chirp: chirp(20.0),
            inter_delay: 100e-6,
        });
        train.push(ChirpSlot {
            chirp: chirp(20.0),
            inter_delay: 50e-6,
        });
        assert!(!train.is_uniform_period(1e-9));
    }

    #[test]
    fn error_displays() {
        let err = ChirpTrain::with_fixed_period(&[chirp(200.0)], 120e-6).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("chirp 0"), "{msg}");
    }
}
