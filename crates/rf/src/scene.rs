//! Radar scene: point scatterers and modulated tag reflectors.
//!
//! The radar sees the superposition of reflections from static clutter,
//! moving targets, and BiScatter tags. A tag is a scatterer whose
//! reflectivity is *time-varying* — the RF switch toggles the Van Atta array
//! between reflective and absorptive states, which is what the radar's
//! slow-time processing later picks out as the tag signature (paper §3.3).

/// How a tag modulates its reflectivity over time.
#[derive(Debug, Clone, PartialEq)]
pub enum TagModulation {
    /// Constant reflectivity (a plain reflector or an idle tag).
    None,
    /// On-off keying with a square subcarrier at `freq_hz` and `duty` cycle —
    /// the tag's localization beacon and uplink carrier.
    Subcarrier {
        /// Switch toggle frequency, Hz.
        freq_hz: f64,
        /// Fraction of each cycle spent reflective.
        duty: f64,
    },
    /// OOK data: the subcarrier is gated on/off per bit. A `true` bit
    /// transmits the subcarrier for `bit_duration_s`; a `false` bit leaves
    /// the tag absorptive.
    OokBits {
        /// Subcarrier frequency, Hz.
        freq_hz: f64,
        /// Duration of each uplink bit, seconds.
        bit_duration_s: f64,
        /// The bit sequence (repeats if the frame outlasts it).
        bits: Vec<bool>,
    },
    /// FSK data: bit selects between two subcarrier frequencies.
    FskBits {
        /// Subcarrier for a `false` bit, Hz.
        freq0_hz: f64,
        /// Subcarrier for a `true` bit, Hz.
        freq1_hz: f64,
        /// Duration of each uplink bit, seconds.
        bit_duration_s: f64,
        /// The bit sequence (repeats if the frame outlasts it).
        bits: Vec<bool>,
    },
}

impl TagModulation {
    /// Reflectivity multiplier in `[leak, 1]` at absolute time `t`.
    /// `leak` is the residual reflection in the absorptive state
    /// (switch isolation).
    pub fn reflectivity(&self, t: f64, leak: f64) -> f64 {
        let on = |freq: f64, duty: f64| {
            let phase = (t * freq).rem_euclid(1.0);
            phase < duty
        };
        let active = match self {
            TagModulation::None => true,
            TagModulation::Subcarrier { freq_hz, duty } => on(*freq_hz, *duty),
            TagModulation::OokBits {
                freq_hz,
                bit_duration_s,
                bits,
            } => {
                if bits.is_empty() {
                    false
                } else {
                    let idx = ((t / bit_duration_s).floor() as usize) % bits.len();
                    bits[idx] && on(*freq_hz, 0.5)
                }
            }
            TagModulation::FskBits {
                freq0_hz,
                freq1_hz,
                bit_duration_s,
                bits,
            } => {
                if bits.is_empty() {
                    false
                } else {
                    let idx = ((t / bit_duration_s).floor() as usize) % bits.len();
                    let f = if bits[idx] { *freq1_hz } else { *freq0_hz };
                    on(f, 0.5)
                }
            }
        };
        if active {
            1.0
        } else {
            leak
        }
    }
}

/// A point reflector in the scene.
#[derive(Debug, Clone, PartialEq)]
pub struct Scatterer {
    /// Range from the radar at `t = 0`, metres.
    pub range_m: f64,
    /// Azimuth angle off the radar array's boresight, radians (positive =
    /// toward higher-numbered RX antennas). Only multi-RX processing
    /// observes it.
    pub azimuth_rad: f64,
    /// Radial velocity (positive = receding), m/s.
    pub velocity_mps: f64,
    /// Received IF amplitude contribution (linear, arbitrary units —
    /// normalized against the radar's noise floor by the IF generator).
    pub amplitude: f64,
    /// Time-varying reflectivity (tags modulate; clutter uses `None`).
    pub modulation: TagModulation,
    /// Residual reflectivity in the absorptive state (switch leakage),
    /// linear amplitude fraction.
    pub leak: f64,
}

impl Scatterer {
    /// A static clutter reflector.
    pub fn clutter(range_m: f64, amplitude: f64) -> Self {
        Scatterer {
            range_m,
            azimuth_rad: 0.0,
            velocity_mps: 0.0,
            amplitude,
            modulation: TagModulation::None,
            leak: 1.0,
        }
    }

    /// A moving target (person, drone) with constant radial velocity.
    pub fn mover(range_m: f64, velocity_mps: f64, amplitude: f64) -> Self {
        Scatterer {
            range_m,
            azimuth_rad: 0.0,
            velocity_mps,
            amplitude,
            modulation: TagModulation::None,
            leak: 1.0,
        }
    }

    /// A BiScatter tag with a localization subcarrier.
    pub fn tag(range_m: f64, amplitude: f64, mod_freq_hz: f64) -> Self {
        Scatterer {
            range_m,
            azimuth_rad: 0.0,
            velocity_mps: 0.0,
            amplitude,
            modulation: TagModulation::Subcarrier {
                freq_hz: mod_freq_hz,
                duty: 0.5,
            },
            leak: 0.01,
        }
    }

    /// Places the scatterer at an azimuth angle (radians), builder-style.
    pub fn at_azimuth(mut self, azimuth_rad: f64) -> Self {
        self.azimuth_rad = azimuth_rad;
        self
    }

    /// Range at absolute time `t`.
    pub fn range_at(&self, t: f64) -> f64 {
        self.range_m + self.velocity_mps * t
    }

    /// Effective amplitude at absolute time `t` (reflectivity modulation
    /// applied).
    pub fn amplitude_at(&self, t: f64) -> f64 {
        self.amplitude * self.modulation.reflectivity(t, self.leak)
    }
}

/// The complete scene observed by the radar.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scene {
    /// All reflectors, tags included.
    pub scatterers: Vec<Scatterer>,
}

impl Scene {
    /// An empty scene.
    pub fn new() -> Self {
        Scene::default()
    }

    /// Adds a scatterer, builder-style.
    pub fn with(mut self, s: Scatterer) -> Self {
        self.scatterers.push(s);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_modulation_always_on() {
        let m = TagModulation::None;
        for i in 0..10 {
            assert_eq!(m.reflectivity(i as f64 * 0.123, 0.01), 1.0);
        }
    }

    #[test]
    fn subcarrier_duty() {
        let m = TagModulation::Subcarrier {
            freq_hz: 1000.0,
            duty: 0.5,
        };
        assert_eq!(m.reflectivity(0.0, 0.0), 1.0);
        assert_eq!(m.reflectivity(0.00025, 0.0), 1.0);
        assert_eq!(m.reflectivity(0.00075, 0.0), 0.0);
        // Leak floor respected.
        assert_eq!(m.reflectivity(0.00075, 0.05), 0.05);
    }

    #[test]
    fn ook_bits_gate_subcarrier() {
        let m = TagModulation::OokBits {
            freq_hz: 10_000.0,
            bit_duration_s: 1e-3,
            bits: vec![true, false],
        };
        // During bit 0 (true): subcarrier active -> on at phase 0.
        assert_eq!(m.reflectivity(0.0, 0.01), 1.0);
        // During bit 1 (false): always leak.
        assert_eq!(m.reflectivity(1.5e-3, 0.01), 0.01);
        // Sequence repeats.
        assert_eq!(m.reflectivity(2.0e-3, 0.01), 1.0);
    }

    #[test]
    fn fsk_bits_switch_frequency() {
        let m = TagModulation::FskBits {
            freq0_hz: 1000.0,
            freq1_hz: 2000.0,
            bit_duration_s: 0.1,
            bits: vec![false, true],
        };
        // Count toggles in each bit period to verify the frequency changed.
        let count_toggles = |start: f64| {
            let mut toggles = 0;
            let mut last = m.reflectivity(start, 0.0);
            for i in 1..1000 {
                let v = m.reflectivity(start + i as f64 * 1e-4, 0.0);
                if v != last {
                    toggles += 1;
                }
                last = v;
            }
            toggles
        };
        let t0 = count_toggles(0.0);
        let t1 = count_toggles(0.1);
        assert!(t1 > t0 + 50, "bit1 ({t1}) should toggle ~2x bit0 ({t0})");
    }

    #[test]
    fn empty_bits_absorb() {
        let m = TagModulation::OokBits {
            freq_hz: 1000.0,
            bit_duration_s: 1e-3,
            bits: vec![],
        };
        assert_eq!(m.reflectivity(0.0, 0.02), 0.02);
    }

    #[test]
    fn scatterer_motion() {
        let s = Scatterer::mover(10.0, -1.5, 1.0);
        assert_eq!(s.range_at(0.0), 10.0);
        assert!((s.range_at(2.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn tag_amplitude_modulates() {
        let s = Scatterer::tag(3.0, 2.0, 1000.0);
        let on = s.amplitude_at(0.0);
        let off = s.amplitude_at(0.00075);
        assert_eq!(on, 2.0);
        assert!((off - 0.02).abs() < 1e-12);
    }

    #[test]
    fn scene_builder() {
        let scene = Scene::new()
            .with(Scatterer::clutter(1.0, 1.0))
            .with(Scatterer::tag(3.0, 0.5, 2000.0));
        assert_eq!(scene.scatterers.len(), 2);
    }
}
