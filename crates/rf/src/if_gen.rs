//! Dechirped IF-domain sample generation.
//!
//! The radar mixes each received reflection with its own transmitted chirp;
//! a reflector at delay `τ = 2r/c` produces the IF phase
//!
//! `φ_IF(t) = φ(t) − φ(t−τ) = 2π (f0 τ + α τ t − α τ² / 2)`
//!
//! i.e. a tone at `f_IF = α τ = 2 α r / c` (paper eq. 3) with a
//! range-dependent phase offset. Simulating *this* domain at the radar's IF
//! sample rate (MHz) is the standard equivalent-baseband substitution for
//! full GHz passband simulation (DESIGN.md §5, level 3) — it is phase-exact
//! for every quantity the receiver measures.
//!
//! Tag modulation enters as a time-varying amplitude on the tag's scatterer,
//! evaluated at *absolute* time so the switch waveform is continuous across
//! chirps — exactly what the radar's slow-time FFT later exploits.
//!
//! Each scatterer's tone is synthesized with a complex phase oscillator (one
//! complex multiply per sample, renormalized every [`RENORM_INTERVAL`]
//! samples) instead of a per-sample `cos()`, and unmodulated scatterers skip
//! the per-sample amplitude evaluation entirely — together the dominant cost
//! of frame synthesis in clutter-rich scenes.

use std::cell::RefCell;

use crate::chirp::Chirp;
use crate::scene::{Scatterer, Scene, TagModulation};
use crate::slab::{ArrayCapture, SampleSlab, SampleSlab32};
use biscatter_compute::ComputePool;
use biscatter_dsp::signal::NoiseSource;
use biscatter_dsp::{Cpx, SPEED_OF_LIGHT, TAU};

/// Adds one scatterer's IF contribution to `out` using the phase-oscillator
/// recurrence `ph ← ph · rot` (`rot = e^{i 2π f_IF / fs}`), with the
/// amplitude taken per sample from `amps` (`None` = the constant
/// `const_amp`, valid when the scatterer is unmodulated).
///
/// The inner loop lives in `biscatter_dsp::simd` behind runtime dispatch:
/// the serial recurrence is blocked into four independent phase streams
/// advanced by `rot⁴`, renormalized every 256 samples. The error bound is
/// the serial recurrence's — amplitude drift ≤ ~`2Rε ≈ 1.1e-13` relative
/// between renormalizations, phase drift ~`nε` radians over an `n`-sample
/// chirp — see DESIGN.md §9 and §14. Results are bit-identical across
/// dispatch tiers (scalar vs AVX2).
#[inline]
fn accumulate_oscillator(out: &mut [f64], ph: Cpx, rot: Cpx, amps: Option<&[f64]>, const_amp: f64) {
    biscatter_dsp::simd::osc_accum(out, amps, const_amp, ph, rot);
}

/// Per-scatterer dechirp geometry at one chirp start: the IF tone phasor
/// rotation and starting phase. `None` when the scatterer is behind the
/// radar.
#[inline]
fn scatterer_tone(s: &Scatterer, chirp: &Chirp, fs: f64, t_start: f64) -> Option<(f64, Cpx)> {
    // Range (hence delay) at the chirp start; intra-chirp motion is
    // negligible at indoor velocities (µm over 100 µs).
    let r = s.range_at(t_start);
    if r <= 0.0 {
        return None;
    }
    let alpha = chirp.slope();
    let tau = 2.0 * r / SPEED_OF_LIGHT;
    let f_if = alpha * tau;
    let phase0 = TAU * (chirp.f0 * tau - 0.5 * alpha * tau * tau);
    Some((phase0, Cpx::cis(TAU * f_if / fs)))
}

/// Fills `amps[i] = s.amplitude_at(t_start + i/fs)` for a modulated
/// scatterer; returns `None` (leaving `amps` untouched) when the amplitude
/// is constant so callers can skip the per-sample evaluation entirely.
#[inline]
fn modulated_amplitudes<'a>(
    s: &Scatterer,
    t_start: f64,
    fs: f64,
    amps: &'a mut [f64],
) -> Option<&'a [f64]> {
    if s.modulation == TagModulation::None {
        return None;
    }
    for (i, a) in amps.iter_mut().enumerate() {
        *a = s.amplitude_at(t_start + i as f64 / fs);
    }
    Some(amps)
}

/// f32 variant of [`modulated_amplitudes`] for the f32 frame tier: the
/// amplitude waveform is still *evaluated* in f64 (absolute-time switch
/// phase needs the precision) and each sample is rounded once.
///
/// Unlike the f64 path this hoists the modulation match out of the sample
/// loop and replaces `rem_euclid(1.0)` with `x − x.floor()` — bit-identical
/// for the non-negative phases that occur here (both are exact below 2⁵³),
/// but a couple of vector instructions instead of an `fmod` call per
/// sample. The generic `amplitude_at` walk costs more than the oscillator
/// accumulation it feeds.
#[inline]
fn modulated_amplitudes_32<'a>(
    s: &Scatterer,
    t_start: f64,
    fs: f64,
    amps: &'a mut [f32],
) -> Option<&'a [f32]> {
    #[inline]
    fn fract_pos(x: f64) -> f64 {
        x - x.floor()
    }
    let level = |active: bool, amp: f64, leak: f64| if active { amp } else { amp * leak };
    match &s.modulation {
        TagModulation::None => return None,
        TagModulation::Subcarrier { freq_hz, duty } => {
            let (f, duty) = (*freq_hz, *duty);
            for (i, a) in amps.iter_mut().enumerate() {
                let t = t_start + i as f64 / fs;
                *a = level(fract_pos(t * f) < duty, s.amplitude, s.leak) as f32;
            }
        }
        TagModulation::OokBits {
            freq_hz,
            bit_duration_s,
            bits,
        } => {
            let f = *freq_hz;
            for (i, a) in amps.iter_mut().enumerate() {
                let t = t_start + i as f64 / fs;
                let active = if bits.is_empty() {
                    false
                } else {
                    let idx = ((t / bit_duration_s).floor() as usize) % bits.len();
                    bits[idx] && fract_pos(t * f) < 0.5
                };
                *a = level(active, s.amplitude, s.leak) as f32;
            }
        }
        TagModulation::FskBits {
            freq0_hz,
            freq1_hz,
            bit_duration_s,
            bits,
        } => {
            for (i, a) in amps.iter_mut().enumerate() {
                let t = t_start + i as f64 / fs;
                let active = if bits.is_empty() {
                    false
                } else {
                    let idx = ((t / bit_duration_s).floor() as usize) % bits.len();
                    let f = if bits[idx] { *freq1_hz } else { *freq0_hz };
                    fract_pos(t * f) < 0.5
                };
                *a = level(active, s.amplitude, s.leak) as f32;
            }
        }
    }
    Some(amps)
}

thread_local! {
    /// Per-thread amplitude scratch for modulated scatterers, so parallel
    /// chirp synthesis neither shares a buffer nor allocates per chirp.
    static AMPS: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    /// f32 counterpart of [`AMPS`] for the f32 frame tier.
    static AMPS32: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with an `n`-sample thread-local scratch buffer (contents
/// unspecified; every consumer overwrites before reading).
fn with_amps<R>(n: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    AMPS.with(|cell| {
        let mut amps = cell.borrow_mut();
        if amps.len() < n {
            amps.resize(n, 0.0);
        }
        f(&mut amps[..n])
    })
}

/// f32 counterpart of [`with_amps`].
fn with_amps32<R>(n: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    AMPS32.with(|cell| {
        let mut amps = cell.borrow_mut();
        if amps.len() < n {
            amps.resize(n, 0.0);
        }
        f(&mut amps[..n])
    })
}

/// Synthesizes one chirp's noiseless IF signal into `out` (assumed zeroed):
/// the sum of every scatterer's oscillator tone, in scene order. Pure —
/// consumes no RNG state — so chirps can be synthesized in any order (or in
/// parallel) and still produce bit-identical samples.
fn synth_chirp(out: &mut [f64], chirp: &Chirp, scene: &Scene, fs: f64, t_start: f64) {
    with_amps(out.len(), |amps| {
        for s in &scene.scatterers {
            let Some((phase0, rot)) = scatterer_tone(s, chirp, fs, t_start) else {
                continue;
            };
            let amps = modulated_amplitudes(s, t_start, fs, &mut *amps);
            accumulate_oscillator(out, Cpx::cis(phase0), rot, amps, s.amplitude);
        }
    });
}

/// f32 variant of [`synth_chirp`] for the f32 frame tier. Geometry
/// (ranges, starting phases, rotations) is computed in f64 exactly as the
/// f64 path does; only the per-sample accumulation runs in f32 (eight
/// blocked phase streams, see `biscatter_dsp::simd::osc_accum_32`).
fn synth_chirp_32(out: &mut [f32], chirp: &Chirp, scene: &Scene, fs: f64, t_start: f64) {
    with_amps32(out.len(), |amps| {
        for s in &scene.scatterers {
            let Some((phase0, rot)) = scatterer_tone(s, chirp, fs, t_start) else {
                continue;
            };
            let amps = modulated_amplitudes_32(s, t_start, fs, &mut *amps);
            biscatter_dsp::simd::osc_accum_32(out, amps, s.amplitude as f32, Cpx::cis(phase0), rot);
        }
    });
}

/// [`synth_chirp`] for antenna `k` of a uniform linear array: each
/// scatterer's starting phase gains `k · 2π d_λ sin θ` (the narrowband
/// array model). Per-sample operations match the antenna-inner loop of the
/// serial array dechirp exactly, so parallelizing over `(antenna, chirp)`
/// keeps outputs bit-identical.
fn synth_chirp_rx(
    out: &mut [f64],
    chirp: &Chirp,
    scene: &Scene,
    fs: f64,
    t_start: f64,
    k: usize,
    spacing_wavelengths: f64,
) {
    with_amps(out.len(), |amps| {
        for s in &scene.scatterers {
            let Some((phase0, rot)) = scatterer_tone(s, chirp, fs, t_start) else {
                continue;
            };
            let array_phase = TAU * spacing_wavelengths * s.azimuth_rad.sin();
            let amps = modulated_amplitudes(s, t_start, fs, &mut *amps);
            let ph0 = Cpx::cis(phase0 + k as f64 * array_phase);
            accumulate_oscillator(out, ph0, rot, amps, s.amplitude);
        }
    });
}

/// IF receiver parameters.
#[derive(Debug, Clone, Copy)]
pub struct IfReceiver {
    /// IF ADC sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Additive white noise standard deviation at the IF output (same
    /// arbitrary amplitude units as the scene's scatterer amplitudes).
    pub noise_sigma: f64,
}

impl IfReceiver {
    /// Generates the IF samples for one chirp.
    ///
    /// * `chirp` — the transmitted sweep,
    /// * `scene` — the reflectors,
    /// * `t_start` — absolute start time of this chirp (sets target motion
    ///   and tag-modulation phase),
    /// * `noise` — seeded noise source (pass the same source across chirps
    ///   of a frame for independent noise per chirp).
    pub fn dechirp(
        &self,
        chirp: &Chirp,
        scene: &Scene,
        t_start: f64,
        noise: &mut NoiseSource,
    ) -> Vec<f64> {
        let n = chirp.if_samples(self.sample_rate_hz);
        let mut out = vec![0.0f64; n];
        synth_chirp(&mut out, chirp, scene, self.sample_rate_hz, t_start);
        if self.noise_sigma > 0.0 {
            noise.add_awgn(&mut out, self.noise_sigma);
        }
        out
    }

    /// Generates IF samples for one chirp at every antenna of a uniform
    /// linear RX array with `spacing_wavelengths` element pitch. A scatterer
    /// at azimuth `θ` arrives at antenna `k` with an extra phase of
    /// `2π k d_λ sin θ` (the narrowband array model); noise is independent
    /// per antenna.
    pub fn dechirp_array(
        &self,
        chirp: &Chirp,
        scene: &Scene,
        t_start: f64,
        n_rx: usize,
        spacing_wavelengths: f64,
        noise: &mut NoiseSource,
    ) -> Vec<Vec<f64>> {
        let n = chirp.if_samples(self.sample_rate_hz);
        let mut out = vec![vec![0.0f64; n]; n_rx];
        for (k, rx) in out.iter_mut().enumerate() {
            synth_chirp_rx(
                rx,
                chirp,
                scene,
                self.sample_rate_hz,
                t_start,
                k,
                spacing_wavelengths,
            );
        }
        if self.noise_sigma > 0.0 {
            for rx in out.iter_mut() {
                noise.add_awgn(rx, self.noise_sigma);
            }
        }
        out
    }

    /// Multi-antenna variant of [`IfReceiver::dechirp_train`]: returns the
    /// whole capture as one rx-major `[rx][chirp][sample]` slab. Synthesis
    /// fans out over the global [`ComputePool`]; see
    /// [`IfReceiver::dechirp_train_array_into`].
    pub fn dechirp_train_array(
        &self,
        train: &crate::frame::ChirpTrain,
        scene: &Scene,
        t_frame_start: f64,
        n_rx: usize,
        spacing_wavelengths: f64,
        noise: &mut NoiseSource,
    ) -> ArrayCapture {
        let mut out = ArrayCapture::new();
        self.dechirp_train_array_into(
            ComputePool::global(),
            train,
            scene,
            t_frame_start,
            n_rx,
            spacing_wavelengths,
            noise,
            &mut out,
        );
        out
    }

    /// Synthesizes a multi-antenna capture into a reusable [`ArrayCapture`],
    /// fanning the `n_rx × n_chirps` independent rows out across `pool`.
    ///
    /// Bit-identical to the serial chirp-by-chirp path: tone synthesis
    /// consumes no RNG (each row's samples are the same floating-point ops
    /// in the same order regardless of scheduling), and the stateful noise
    /// source is applied afterwards on the caller thread in the serial
    /// order — chirp-major, antenna-minor, exactly as the per-chirp
    /// [`IfReceiver::dechirp_array`] loop would.
    // One parameter per physical input; bundling them would just move the
    // argument list into a struct literal at every call site.
    #[allow(clippy::too_many_arguments)]
    pub fn dechirp_train_array_into(
        &self,
        pool: &ComputePool,
        train: &crate::frame::ChirpTrain,
        scene: &Scene,
        t_frame_start: f64,
        n_rx: usize,
        spacing_wavelengths: f64,
        noise: &mut NoiseSource,
        out: &mut ArrayCapture,
    ) {
        let fs = self.sample_rate_hz;
        let slots = train.slots();
        let n_chirps = slots.len();
        out.layout(n_rx, slots.iter().map(|s| s.chirp.if_samples(fs)));
        {
            let (offsets, data) = out.parts_mut();
            pool.par_ragged(data, offsets, |row, samples| {
                let (rx, c) = (row / n_chirps, row % n_chirps);
                synth_chirp_rx(
                    samples,
                    &slots[c].chirp,
                    scene,
                    fs,
                    t_frame_start + train.slot_start(c),
                    rx,
                    spacing_wavelengths,
                );
            });
        }
        if self.noise_sigma > 0.0 {
            for c in 0..n_chirps {
                for rx in 0..n_rx {
                    noise.add_awgn(out.chirp_mut(rx, c), self.noise_sigma);
                }
            }
        }
    }

    /// Generates IF samples for every chirp of a train (absolute-time
    /// aligned), returning one `Vec` per chirp. Synthesis fans out over the
    /// global [`ComputePool`]; bit-identical to the sequential per-chirp
    /// path (tone synthesis is RNG-free, noise is added serially in chirp
    /// order afterwards).
    pub fn dechirp_train(
        &self,
        train: &crate::frame::ChirpTrain,
        scene: &Scene,
        t_frame_start: f64,
        noise: &mut NoiseSource,
    ) -> Vec<Vec<f64>> {
        let fs = self.sample_rate_hz;
        let slots = train.slots();
        let mut out: Vec<Vec<f64>> = slots
            .iter()
            .map(|s| vec![0.0f64; s.chirp.if_samples(fs)])
            .collect();
        ComputePool::global().par_chunks(&mut out, 1, |c, row| {
            synth_chirp(
                &mut row[0],
                &slots[c].chirp,
                scene,
                fs,
                t_frame_start + train.slot_start(c),
            );
        });
        if self.noise_sigma > 0.0 {
            for row in out.iter_mut() {
                noise.add_awgn(row, self.noise_sigma);
            }
        }
        out
    }

    /// Zero-allocation variant of [`IfReceiver::dechirp_train`]: lays the
    /// frame out in a reusable [`SampleSlab`] and fans chirp synthesis out
    /// across `pool`. Bit-identical to the sequential path (see
    /// [`IfReceiver::dechirp_train_array_into`] for the argument).
    pub fn dechirp_train_into(
        &self,
        pool: &ComputePool,
        train: &crate::frame::ChirpTrain,
        scene: &Scene,
        t_frame_start: f64,
        noise: &mut NoiseSource,
        out: &mut SampleSlab,
    ) {
        let fs = self.sample_rate_hz;
        let slots = train.slots();
        out.layout_rows(slots.iter().map(|s| s.chirp.if_samples(fs)));
        {
            let (offsets, data) = out.parts_mut();
            pool.par_ragged(data, offsets, |r, row| {
                synth_chirp(
                    row,
                    &slots[r].chirp,
                    scene,
                    fs,
                    t_frame_start + train.slot_start(r),
                );
            });
        }
        if self.noise_sigma > 0.0 {
            for r in 0..out.rows() {
                noise.add_awgn(out.row_mut(r), self.noise_sigma);
            }
        }
    }

    /// f32 tier of [`IfReceiver::dechirp_train_into`]: same layout, same
    /// chirp geometry (computed in f64), with the per-sample synthesis
    /// running in single precision and the noise drawn from the fast
    /// inverse-CDF generator (`NoiseSource::add_awgn_f32_fast`) — Box–Muller
    /// would otherwise dominate this stage. The realization is seeded and
    /// deterministic but *differs* from the f64 path's; cross-tier
    /// validation is statistical (detection/decode agreement at operating
    /// SNR) plus noiseless kernel bounds, not sample equality.
    pub fn dechirp_train_into_f32(
        &self,
        pool: &ComputePool,
        train: &crate::frame::ChirpTrain,
        scene: &Scene,
        t_frame_start: f64,
        noise: &mut NoiseSource,
        out: &mut SampleSlab32,
    ) {
        let fs = self.sample_rate_hz;
        let slots = train.slots();
        out.layout_rows(slots.iter().map(|s| s.chirp.if_samples(fs)));
        {
            let (offsets, data) = out.parts_mut();
            pool.par_ragged(data, offsets, |r, row| {
                synth_chirp_32(
                    row,
                    &slots[r].chirp,
                    scene,
                    fs,
                    t_frame_start + train.slot_start(r),
                );
            });
        }
        if self.noise_sigma > 0.0 {
            for r in 0..out.rows() {
                noise.add_awgn_f32_fast(out.row_mut(r), self.noise_sigma);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ChirpTrain;
    use crate::scene::{Scatterer, TagModulation};
    use biscatter_dsp::spectrum::{find_peak, periodogram};
    use biscatter_dsp::window::WindowKind;

    fn rx() -> IfReceiver {
        IfReceiver {
            sample_rate_hz: 2e6,
            noise_sigma: 0.0,
        }
    }

    /// The seed implementation evaluated `amp·cos(phase0 + 2π f_IF t)` per
    /// sample; the oscillator recurrence must reproduce it to well below the
    /// simulation's noise floor (see `RENORM_INTERVAL` for the bound).
    #[test]
    fn oscillator_matches_direct_cos() {
        let chirp = Chirp::new(9e9, 1e9, 200e-6); // 400 samples at 2 MHz
        let mut tag = Scatterer::tag(4.0, 1.5, 3000.0);
        tag.leak = 0.05;
        let scene = Scene::new()
            .with(Scatterer::clutter(2.0, 3.0))
            .with(Scatterer::mover(6.0, 1.0, 0.5))
            .with(tag);
        let receiver = rx();
        let fs = receiver.sample_rate_hz;
        for t_start in [0.0, 0.0123] {
            let mut noise = NoiseSource::new(1);
            let got = receiver.dechirp(&chirp, &scene, t_start, &mut noise);
            let alpha = chirp.slope();
            let mut want = vec![0.0f64; got.len()];
            for s in &scene.scatterers {
                let r = s.range_at(t_start);
                let tau = 2.0 * r / biscatter_dsp::SPEED_OF_LIGHT;
                let f_if = alpha * tau;
                let phase0 = biscatter_dsp::TAU * (chirp.f0 * tau - 0.5 * alpha * tau * tau);
                for (i, w) in want.iter_mut().enumerate() {
                    let t = i as f64 / fs;
                    *w += s.amplitude_at(t_start + t)
                        * (phase0 + biscatter_dsp::TAU * f_if * t).cos();
                }
            }
            for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
                assert!((g - w).abs() < 1e-9, "sample {i}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn single_target_beat_frequency() {
        let chirp = Chirp::new(9e9, 1e9, 100e-6);
        let scene = Scene::new().with(Scatterer::clutter(5.0, 1.0));
        let mut noise = NoiseSource::new(1);
        let samples = rx().dechirp(&chirp, &scene, 0.0, &mut noise);
        assert_eq!(samples.len(), 200);
        let (freqs, power) = periodogram(&samples, 2e6, WindowKind::Hann);
        let peak = find_peak(&power).unwrap();
        let f_est = peak.refined_bin * freqs[1];
        let f_expected = chirp.beat_freq_for_range(5.0);
        assert!(
            (f_est - f_expected).abs() < 8e3,
            "got {f_est}, expected {f_expected}"
        );
    }

    #[test]
    fn two_targets_two_peaks() {
        let chirp = Chirp::new(9e9, 1e9, 200e-6);
        let scene = Scene::new()
            .with(Scatterer::clutter(2.0, 1.0))
            .with(Scatterer::clutter(6.0, 1.0));
        let mut noise = NoiseSource::new(2);
        let samples = rx().dechirp(&chirp, &scene, 0.0, &mut noise);
        let (freqs, power) = periodogram(&samples, 2e6, WindowKind::Hann);
        let df = freqs[1];
        let f2 = chirp.beat_freq_for_range(2.0);
        let f6 = chirp.beat_freq_for_range(6.0);
        let bin = |f: f64| (f / df).round() as usize;
        // Power near each expected beat should dominate the floor.
        let floor: f64 = power.iter().sum::<f64>() / power.len() as f64;
        assert!(power[bin(f2)] > 10.0 * floor);
        assert!(power[bin(f6)] > 10.0 * floor);
    }

    #[test]
    fn amplitude_scales_power() {
        let chirp = Chirp::new(9e9, 1e9, 100e-6);
        let mut noise = NoiseSource::new(3);
        let strong = rx().dechirp(
            &chirp,
            &Scene::new().with(Scatterer::clutter(4.0, 2.0)),
            0.0,
            &mut noise,
        );
        let weak = rx().dechirp(
            &chirp,
            &Scene::new().with(Scatterer::clutter(4.0, 1.0)),
            0.0,
            &mut noise,
        );
        let p = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        assert!((p(&strong) / p(&weak) - 4.0).abs() < 0.01);
    }

    #[test]
    fn moving_target_shifts_range_over_time() {
        let chirp = Chirp::new(9e9, 1e9, 100e-6);
        let scene = Scene::new().with(Scatterer::mover(5.0, 10.0, 1.0));
        let mut noise = NoiseSource::new(4);
        let early = rx().dechirp(&chirp, &scene, 0.0, &mut noise);
        let late = rx().dechirp(&chirp, &scene, 0.1, &mut noise); // +1 m
        let peak_freq = |v: &[f64]| {
            let (freqs, power) = periodogram(v, 2e6, WindowKind::Hann);
            find_peak(&power).unwrap().refined_bin * freqs[1]
        };
        let f_early = peak_freq(&early);
        let f_late = peak_freq(&late);
        let df_expected = chirp.beat_freq_for_range(6.0) - chirp.beat_freq_for_range(5.0);
        assert!(
            ((f_late - f_early) - df_expected).abs() < 0.2 * df_expected,
            "shift {} vs expected {}",
            f_late - f_early,
            df_expected
        );
    }

    #[test]
    fn tag_modulation_gates_chirps() {
        // Tag toggling at half the chirp rate: alternate chirps see the tag
        // on/off. Modulation freq chosen so chirp starts land on opposite
        // half-cycles.
        let period = 100e-6;
        let chirps = vec![Chirp::new(9e9, 1e9, 80e-6); 4];
        let train = ChirpTrain::with_fixed_period(&chirps, period).unwrap();
        let mod_freq = 1.0 / (2.0 * period); // 5 kHz
        let mut tag = Scatterer::tag(4.0, 1.0, mod_freq);
        tag.leak = 0.0;
        tag.modulation = TagModulation::Subcarrier {
            freq_hz: mod_freq,
            duty: 0.5,
        };
        let scene = Scene::new().with(tag);
        let mut noise = NoiseSource::new(5);
        let per_chirp = rx().dechirp_train(&train, &scene, 0.0, &mut noise);
        let p = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        // Chirps 0, 2 on; 1, 3 off (leak = 0).
        assert!(p(&per_chirp[0]) > 1.0);
        assert!(p(&per_chirp[1]) < 1e-9);
        assert!(p(&per_chirp[2]) > 1.0);
        assert!(p(&per_chirp[3]) < 1e-9);
    }

    #[test]
    fn noise_changes_between_chirps() {
        let chirp = Chirp::new(9e9, 1e9, 50e-6);
        let scene = Scene::new();
        let receiver = IfReceiver {
            sample_rate_hz: 2e6,
            noise_sigma: 0.1,
        };
        let mut noise = NoiseSource::new(6);
        let a = receiver.dechirp(&chirp, &scene, 0.0, &mut noise);
        let b = receiver.dechirp(&chirp, &scene, 0.0, &mut noise);
        assert_ne!(a, b);
    }

    fn busy_scene() -> Scene {
        let mut tag = Scatterer::tag(4.0, 1.0, 3000.0);
        tag.modulation = TagModulation::Subcarrier {
            freq_hz: 3000.0,
            duty: 0.5,
        };
        Scene::new()
            .with(Scatterer::clutter(2.0, 3.0))
            .with(Scatterer::mover(6.0, 1.0, 0.5))
            .with(tag)
    }

    #[test]
    fn train_into_bit_identical_across_pool_sizes() {
        let chirps = vec![Chirp::new(9e9, 1e9, 80e-6); 6];
        let train = ChirpTrain::with_fixed_period(&chirps, 100e-6).unwrap();
        let scene = busy_scene();
        let receiver = IfReceiver {
            sample_rate_hz: 2e6,
            noise_sigma: 0.1,
        };
        let mut n_ref = NoiseSource::new(11);
        let reference = receiver.dechirp_train(&train, &scene, 0.0, &mut n_ref);
        for threads in [1usize, 2, 4] {
            let pool = ComputePool::new(threads);
            let mut noise = NoiseSource::new(11);
            let mut slab = SampleSlab::new();
            receiver.dechirp_train_into(&pool, &train, &scene, 0.0, &mut noise, &mut slab);
            assert_eq!(slab.rows(), reference.len());
            for (c, row) in reference.iter().enumerate() {
                assert_eq!(slab.row(c), &row[..], "chirp {c}, {threads} threads");
            }
        }
    }

    #[test]
    fn train_array_bit_identical_to_per_chirp_serial() {
        let chirps = vec![Chirp::new(9e9, 1e9, 80e-6); 4];
        let train = ChirpTrain::with_fixed_period(&chirps, 100e-6).unwrap();
        let mut scene = busy_scene();
        scene.scatterers[0].azimuth_rad = 0.3;
        scene.scatterers[2].azimuth_rad = -0.2;
        let receiver = IfReceiver {
            sample_rate_hz: 2e6,
            noise_sigma: 0.05,
        };
        let (n_rx, spacing) = (3usize, 0.5);
        // Serial baseline: the seed's chirp-by-chirp array dechirp.
        let mut n_ref = NoiseSource::new(12);
        let reference: Vec<Vec<Vec<f64>>> = train
            .iter_timed()
            .map(|(t0, slot)| {
                receiver.dechirp_array(&slot.chirp, &scene, t0, n_rx, spacing, &mut n_ref)
            })
            .collect();
        for threads in [1usize, 2, 4] {
            let pool = ComputePool::new(threads);
            let mut noise = NoiseSource::new(12);
            let mut cap = ArrayCapture::new();
            receiver.dechirp_train_array_into(
                &pool, &train, &scene, 0.0, n_rx, spacing, &mut noise, &mut cap,
            );
            assert_eq!((cap.n_rx(), cap.n_chirps()), (n_rx, reference.len()));
            for (c, per_antenna) in reference.iter().enumerate() {
                for (k, want) in per_antenna.iter().enumerate() {
                    assert_eq!(
                        cap.chirp(k, c),
                        &want[..],
                        "chirp {c} rx {k}, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_train_tracks_f64_noiseless() {
        let chirps = vec![Chirp::new(9e9, 1e9, 80e-6); 6];
        let train = ChirpTrain::with_fixed_period(&chirps, 100e-6).unwrap();
        let scene = busy_scene();
        // Noiseless so the residual is pure f32 synthesis rounding; the
        // noisy case diverges by design (the f32 tier draws its own fast
        // realization, validated statistically at the frame level).
        let receiver = IfReceiver {
            sample_rate_hz: 2e6,
            noise_sigma: 0.0,
        };
        let pool = ComputePool::new(1);
        let mut n64 = NoiseSource::new(21);
        let mut slab = SampleSlab::new();
        receiver.dechirp_train_into(&pool, &train, &scene, 0.0, &mut n64, &mut slab);
        let mut n32 = NoiseSource::new(21);
        let mut slab32 = SampleSlab32::new();
        receiver.dechirp_train_into_f32(&pool, &train, &scene, 0.0, &mut n32, &mut slab32);
        assert_eq!(slab32.rows(), slab.rows());
        for r in 0..slab.rows() {
            for (i, (&g, &w)) in slab32.row(r).iter().zip(slab.row(r)).enumerate() {
                assert!(
                    (g as f64 - w).abs() < 1e-3,
                    "row {r} sample {i}: {g} vs {w}"
                );
            }
        }
    }

    #[test]
    fn f32_train_noise_is_seeded_and_scaled() {
        let chirps = vec![Chirp::new(9e9, 1e9, 80e-6); 6];
        let train = ChirpTrain::with_fixed_period(&chirps, 100e-6).unwrap();
        let scene = Scene::new(); // empty: the slab is pure noise
        let receiver = IfReceiver {
            sample_rate_hz: 2e6,
            noise_sigma: 0.25,
        };
        let pool = ComputePool::new(1);
        let mut a = SampleSlab32::new();
        let mut b = SampleSlab32::new();
        let mut na = NoiseSource::new(33);
        let mut nb = NoiseSource::new(33);
        receiver.dechirp_train_into_f32(&pool, &train, &scene, 0.0, &mut na, &mut a);
        receiver.dechirp_train_into_f32(&pool, &train, &scene, 0.0, &mut nb, &mut b);
        let mut sum_sq = 0.0f64;
        let mut n = 0usize;
        for r in 0..a.rows() {
            assert_eq!(a.row(r), b.row(r), "same seed must replay exactly");
            for &v in a.row(r) {
                sum_sq += (v as f64) * (v as f64);
                n += 1;
            }
        }
        let std = (sum_sq / n as f64).sqrt();
        assert!((std - 0.25).abs() < 0.01, "noise std {std}");
    }

    #[test]
    fn behind_radar_ignored() {
        let chirp = Chirp::new(9e9, 1e9, 50e-6);
        let scene = Scene::new().with(Scatterer::clutter(-1.0, 1.0));
        let mut noise = NoiseSource::new(7);
        let samples = rx().dechirp(&chirp, &scene, 0.0, &mut noise);
        assert!(samples.iter().all(|&x| x == 0.0));
    }
}
