//! # biscatter-rf — RF waveform, channel, and analog component substrate
//!
//! Models every piece of physical hardware the BiScatter paper uses, at the
//! level of fidelity the system evaluation depends on. The paper's prototypes
//! (LMX2492 9 GHz chirp generator, Analog Devices TinyRad 24 GHz radar,
//! custom tag boards) are not available in this environment, so this crate is
//! the substitution layer described in `DESIGN.md` §2: phase-exact FMCW
//! waveform math, a propagation channel with path loss / multipath / thermal
//! noise, and per-component models of the tag's analog chain (splitters,
//! dispersive delay lines, square-law envelope detector, SPDT switch,
//! Van Atta retro-reflector, ADC).
//!
//! Conventions: frequencies in Hz, times in seconds, distances in metres,
//! powers in dBm unless a name says otherwise, gains/losses in dB. All models
//! are deterministic; randomness enters only through explicitly seeded noise
//! sources.
//!
//! ## Module map
//!
//! | module | contents |
//! |---|---|
//! | [`chirp`] | FMCW chirp parameterization and phase-exact synthesis |
//! | [`frame`] | chirp trains: fixed-period slots with inter-chirp delays |
//! | [`channel`] | FSPL, radar equation, multipath rays, thermal noise, link budgets |
//! | [`components`] | delay line, splitter, envelope detector, RF switch, Van Atta, ADC, antenna |
//! | [`scene`] | point scatterers and modulated tag reflectors seen by the radar |
//! | [`if_gen`] | dechirped IF-domain sample generation for a scene |
//! | [`slab`] | flat per-chirp sample storage (`SampleSlab`, `ArrayCapture`) |
//! | [`tag_frontend`] | the tag's differential (two-delay-line) decoder front-end |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod chirp;
pub mod components;
pub mod frame;
pub mod if_gen;
pub mod scene;
pub mod slab;
pub mod tag_frontend;

pub use biscatter_dsp::SPEED_OF_LIGHT;

/// Converts inches to metres (the paper specifies delay-line length
/// differences in inches: 18 in, 45 in).
pub fn inches_to_m(inches: f64) -> f64 {
    inches * 0.0254
}

/// Boltzmann's constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Reference temperature for noise calculations, Kelvin.
pub const T0_KELVIN: f64 = 290.0;
