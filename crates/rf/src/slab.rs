//! Flattened sample storage for frame-sized captures.
//!
//! The frame hot path used to shuttle `Vec<Vec<f64>>` (one inner `Vec` per
//! chirp) and, for arrays, `Vec<Vec<Vec<f64>>>` between stages — one heap
//! allocation per chirp per frame. This module provides the flat
//! replacements: [`SampleSlab`] stores all chirps of a capture in a single
//! contiguous buffer with an offsets table (rows may have different
//! lengths, since chirps of different durations produce different sample
//! counts), and [`ArrayCapture`] stores a whole multi-antenna capture
//! rx-major (`[rx][chirp][sample]`) with stride accessors. Both reuse their
//! capacity across frames, which is what makes the arena path
//! allocation-free in steady state.
//!
//! [`ChirpRows`] abstracts "an ordered set of per-chirp sample rows" so the
//! radar's alignment stage accepts either representation (or the legacy
//! nested `Vec`s) through one code path.

/// Read access to the per-chirp sample rows of one capture.
pub trait ChirpRows: Sync {
    /// Number of chirp rows.
    fn n_rows(&self) -> usize;
    /// The samples of row `r`.
    fn row(&self, r: usize) -> &[f64];
}

impl ChirpRows for [Vec<f64>] {
    fn n_rows(&self) -> usize {
        self.len()
    }
    fn row(&self, r: usize) -> &[f64] {
        &self[r]
    }
}

impl ChirpRows for Vec<Vec<f64>> {
    fn n_rows(&self) -> usize {
        self.len()
    }
    fn row(&self, r: usize) -> &[f64] {
        &self[r]
    }
}

impl<T: ChirpRows + ?Sized> ChirpRows for &T {
    fn n_rows(&self) -> usize {
        (**self).n_rows()
    }
    fn row(&self, r: usize) -> &[f64] {
        (**self).row(r)
    }
}

/// A ragged 2-D sample buffer: every row lives in one contiguous `data`
/// vector, delimited by a non-decreasing `offsets` table
/// (`row r = data[offsets[r]..offsets[r + 1]]`). Relaying out the slab
/// reuses existing capacity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleSlab {
    data: Vec<f64>,
    offsets: Vec<usize>,
}

impl SampleSlab {
    /// Creates an empty slab.
    pub fn new() -> Self {
        SampleSlab {
            data: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Clears the slab and lays out `lens` zero-filled rows, reusing
    /// capacity from previous frames.
    pub fn layout_rows(&mut self, lens: impl Iterator<Item = usize>) {
        self.data.clear();
        self.offsets.clear();
        self.offsets.push(0);
        let mut total = 0usize;
        for len in lens {
            total += len;
            self.offsets.push(total);
        }
        self.data.resize(total, 0.0);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of samples across all rows.
    pub fn samples(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// The samples of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Mutable samples of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[self.offsets[r]..self.offsets[r + 1]]
    }

    /// The offsets table (length `rows() + 1`) and the mutable flat data,
    /// split so both can feed `ComputePool::par_ragged`.
    pub fn parts_mut(&mut self) -> (&[usize], &mut [f64]) {
        (&self.offsets, &mut self.data)
    }
}

impl ChirpRows for SampleSlab {
    fn n_rows(&self) -> usize {
        self.rows()
    }
    fn row(&self, r: usize) -> &[f64] {
        SampleSlab::row(self, r)
    }
}

/// Single-precision [`SampleSlab`] for the f32 frame tier: same ragged
/// layout and capacity-reuse behaviour, `f32` samples. Kept as a separate
/// type (rather than a generic) so the widely-implemented [`ChirpRows`]
/// trait and its `f64` consumers stay untouched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SampleSlab32 {
    data: Vec<f32>,
    offsets: Vec<usize>,
}

impl SampleSlab32 {
    /// Creates an empty slab.
    pub fn new() -> Self {
        SampleSlab32 {
            data: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Clears the slab and lays out `lens` zero-filled rows, reusing
    /// capacity from previous frames.
    pub fn layout_rows(&mut self, lens: impl Iterator<Item = usize>) {
        self.data.clear();
        self.offsets.clear();
        self.offsets.push(0);
        let mut total = 0usize;
        for len in lens {
            total += len;
            self.offsets.push(total);
        }
        self.data.resize(total, 0.0);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of samples across all rows.
    pub fn samples(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// The samples of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Mutable samples of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[self.offsets[r]..self.offsets[r + 1]]
    }

    /// The offsets table (length `rows() + 1`) and the mutable flat data,
    /// split so both can feed `ComputePool::par_ragged`.
    pub fn parts_mut(&mut self) -> (&[usize], &mut [f32]) {
        (&self.offsets, &mut self.data)
    }
}

/// A multi-antenna capture stored rx-major in one flat buffer:
/// `[rx][chirp][sample]`. All antennas share the same per-chirp layout
/// (`chirp_offsets`), so antenna `k`'s block starts at `k * rx_stride()`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArrayCapture {
    data: Vec<f64>,
    /// Per-chirp start offsets within one antenna block (length
    /// `n_chirps + 1`).
    chirp_offsets: Vec<usize>,
    /// Row offsets over the whole buffer for all `n_rx * n_chirps` rows in
    /// (rx, chirp) order — the table `ComputePool::par_ragged` consumes.
    flat_offsets: Vec<usize>,
    n_rx: usize,
}

impl ArrayCapture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        ArrayCapture {
            data: Vec::new(),
            chirp_offsets: vec![0],
            flat_offsets: vec![0],
            n_rx: 0,
        }
    }

    /// Clears the capture and lays out `n_rx` zero-filled antenna blocks of
    /// the per-chirp lengths in `lens`, reusing capacity.
    pub fn layout(&mut self, n_rx: usize, lens: impl Iterator<Item = usize>) {
        self.n_rx = n_rx;
        self.chirp_offsets.clear();
        self.chirp_offsets.push(0);
        let mut total = 0usize;
        for len in lens {
            total += len;
            self.chirp_offsets.push(total);
        }
        let stride = total;
        self.flat_offsets.clear();
        self.flat_offsets.push(0);
        for rx in 0..n_rx {
            for c in 1..self.chirp_offsets.len() {
                self.flat_offsets.push(rx * stride + self.chirp_offsets[c]);
            }
        }
        self.data.clear();
        self.data.resize(n_rx * stride, 0.0);
    }

    /// Number of antennas.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Number of chirps per antenna.
    pub fn n_chirps(&self) -> usize {
        self.chirp_offsets.len() - 1
    }

    /// Samples occupied by one antenna block.
    pub fn rx_stride(&self) -> usize {
        *self.chirp_offsets.last().unwrap()
    }

    /// The samples of chirp `c` at antenna `rx`.
    pub fn chirp(&self, rx: usize, c: usize) -> &[f64] {
        let base = rx * self.rx_stride();
        &self.data[base + self.chirp_offsets[c]..base + self.chirp_offsets[c + 1]]
    }

    /// Mutable samples of chirp `c` at antenna `rx`.
    pub fn chirp_mut(&mut self, rx: usize, c: usize) -> &mut [f64] {
        let base = rx * self.rx_stride();
        let (lo, hi) = (self.chirp_offsets[c], self.chirp_offsets[c + 1]);
        &mut self.data[base + lo..base + hi]
    }

    /// All rows in (rx, chirp) order as an offsets table plus mutable flat
    /// data, for `ComputePool::par_ragged`. Row `rx * n_chirps + c` is
    /// chirp `c` of antenna `rx`.
    pub fn parts_mut(&mut self) -> (&[usize], &mut [f64]) {
        (&self.flat_offsets, &mut self.data)
    }

    /// A [`ChirpRows`] view of antenna `rx`'s block.
    pub fn rx_view(&self, rx: usize) -> RxChirps<'_> {
        let stride = self.rx_stride();
        RxChirps {
            data: &self.data[rx * stride..(rx + 1) * stride],
            offsets: &self.chirp_offsets,
        }
    }
}

/// One antenna's chirps within an [`ArrayCapture`].
#[derive(Debug, Clone, Copy)]
pub struct RxChirps<'a> {
    data: &'a [f64],
    offsets: &'a [usize],
}

impl ChirpRows for RxChirps<'_> {
    fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }
    fn row(&self, r: usize) -> &[f64] {
        &self.data[self.offsets[r]..self.offsets[r + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_layout_and_rows() {
        let mut slab = SampleSlab::new();
        slab.layout_rows([3usize, 0, 2].into_iter());
        assert_eq!(slab.rows(), 3);
        assert_eq!(slab.samples(), 5);
        slab.row_mut(0).fill(1.0);
        slab.row_mut(2).fill(3.0);
        assert_eq!(slab.row(0), &[1.0, 1.0, 1.0]);
        assert_eq!(slab.row(1), &[] as &[f64]);
        assert_eq!(slab.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn slab_relayout_reuses_and_zeroes() {
        let mut slab = SampleSlab::new();
        slab.layout_rows([4usize, 4].into_iter());
        slab.row_mut(1).fill(9.0);
        let cap = {
            let (_, data) = slab.parts_mut();
            data.len()
        };
        assert_eq!(cap, 8);
        slab.layout_rows([2usize, 2].into_iter());
        assert!(slab.row(0).iter().chain(slab.row(1)).all(|&v| v == 0.0));
    }

    #[test]
    fn array_capture_stride_layout() {
        let mut cap = ArrayCapture::new();
        cap.layout(2, [3usize, 2].into_iter());
        assert_eq!(cap.n_rx(), 2);
        assert_eq!(cap.n_chirps(), 2);
        assert_eq!(cap.rx_stride(), 5);
        cap.chirp_mut(0, 0).fill(1.0);
        cap.chirp_mut(0, 1).fill(2.0);
        cap.chirp_mut(1, 0).fill(3.0);
        cap.chirp_mut(1, 1).fill(4.0);
        assert_eq!(cap.chirp(0, 1), &[2.0, 2.0]);
        assert_eq!(cap.chirp(1, 0), &[3.0, 3.0, 3.0]);
        let v0 = cap.rx_view(0);
        let v1 = cap.rx_view(1);
        assert_eq!(v0.row(0), &[1.0, 1.0, 1.0]);
        assert_eq!(v1.row(1), &[4.0, 4.0]);
    }

    #[test]
    fn array_capture_flat_offsets_cover_rows() {
        let mut cap = ArrayCapture::new();
        cap.layout(3, [2usize, 1, 3].into_iter());
        let n_chirps = cap.n_chirps();
        let stride = cap.rx_stride();
        let (offsets, data) = cap.parts_mut();
        assert_eq!(offsets.len(), 3 * 3 + 1);
        assert_eq!(*offsets.last().unwrap(), data.len());
        for rx in 0..3 {
            for c in 0..n_chirps {
                let row = rx * n_chirps + c;
                assert_eq!(offsets[row], rx * stride + [0, 2, 3][c]);
            }
        }
    }
}
