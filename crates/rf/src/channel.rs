//! Propagation channel: path loss, the radar equation, multipath rays, and
//! thermal noise — the substitution for the paper's over-the-air office
//! environment (0.5–7 m, "substantial multipath propagation").
//!
//! Downlink (radar → tag) is a one-way link: received power follows Friis.
//! Uplink (tag → radar) is a round trip: the backscattered power falls with
//! `1/d⁴` per the radar equation, which is why the paper's uplink SNR range
//! is much lower than the downlink's (§5.1 "double attenuation").

use crate::{BOLTZMANN, SPEED_OF_LIGHT, T0_KELVIN};
use biscatter_dsp::stats::{db_to_pow, pow_to_db};

/// Free-space path loss in dB for a one-way trip of `d` metres at `f` Hz:
/// `20 log10(4 π d f / c)`.
pub fn fspl_db(d_m: f64, f_hz: f64) -> f64 {
    assert!(
        d_m > 0.0 && f_hz > 0.0,
        "distance and frequency must be positive"
    );
    20.0 * (4.0 * std::f64::consts::PI * d_m * f_hz / SPEED_OF_LIGHT).log10()
}

/// Thermal noise power in dBm over bandwidth `bw_hz` at the reference
/// temperature, plus a receiver noise figure `nf_db`.
pub fn thermal_noise_dbm(bw_hz: f64, nf_db: f64) -> f64 {
    assert!(bw_hz > 0.0, "bandwidth must be positive");
    10.0 * (BOLTZMANN * T0_KELVIN * bw_hz * 1000.0).log10() + nf_db
}

/// One-way link budget (radar transmitter to tag receiver input).
#[derive(Debug, Clone, Copy)]
pub struct OneWayLink {
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Transmit antenna gain, dBi.
    pub tx_gain_dbi: f64,
    /// Receive antenna gain, dBi.
    pub rx_gain_dbi: f64,
    /// Carrier frequency, Hz.
    pub freq_hz: f64,
}

impl OneWayLink {
    /// Received power in dBm at distance `d_m`.
    pub fn rx_power_dbm(&self, d_m: f64) -> f64 {
        self.tx_power_dbm + self.tx_gain_dbi + self.rx_gain_dbi - fspl_db(d_m, self.freq_hz)
    }
}

/// Two-way (backscatter) link budget using the radar equation with an
/// effective tag radar cross-section.
#[derive(Debug, Clone, Copy)]
pub struct TwoWayLink {
    /// Radar transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Radar antenna gain (used for both TX and RX), dBi.
    pub radar_gain_dbi: f64,
    /// Carrier frequency, Hz.
    pub freq_hz: f64,
    /// Effective tag radar cross-section, dBsm (dB relative to 1 m²).
    /// A retro-reflective Van Atta tag has a much larger effective RCS than
    /// its physical aperture; see [`crate::components::van_atta`].
    pub tag_rcs_dbsm: f64,
    /// Additional round-trip losses (tag modulation loss, polarization,
    /// implementation), dB.
    pub misc_loss_db: f64,
}

impl TwoWayLink {
    /// Received backscatter power in dBm at the radar for a tag at `d_m`:
    ///
    /// `P_rx = P_tx G² λ² σ / ((4π)³ d⁴)` in linear units.
    pub fn rx_power_dbm(&self, d_m: f64) -> f64 {
        assert!(d_m > 0.0);
        let lambda = SPEED_OF_LIGHT / self.freq_hz;
        let g_lin = db_to_pow(self.radar_gain_dbi);
        let sigma = db_to_pow(self.tag_rcs_dbsm);
        let p_tx_mw = db_to_pow(self.tx_power_dbm);
        let four_pi = 4.0 * std::f64::consts::PI;
        let p_rx_mw =
            p_tx_mw * g_lin * g_lin * lambda * lambda * sigma / (four_pi.powi(3) * d_m.powi(4));
        pow_to_db(p_rx_mw) - self.misc_loss_db
    }
}

/// A discrete multipath ray: an extra propagation path with its own excess
/// delay and attenuation relative to the direct path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultipathRay {
    /// Excess path length relative to the direct path, metres
    /// (total path = direct + excess).
    pub excess_path_m: f64,
    /// Attenuation relative to the direct path, dB (positive = weaker).
    pub attenuation_db: f64,
}

/// The propagation environment: a direct path plus optional multipath rays
/// and a noise temperature elevation.
#[derive(Debug, Clone, Default)]
pub struct Environment {
    /// Multipath rays (beyond the direct path). An empty list models an
    /// anechoic setting; the paper's office has several strong reflectors.
    pub rays: Vec<MultipathRay>,
}

impl Environment {
    /// An ideal free-space environment with no multipath.
    pub fn free_space() -> Self {
        Environment { rays: Vec::new() }
    }

    /// A typical office: a strong floor/ceiling bounce and two wall bounces,
    /// loosely calibrated to indoor X-band measurements.
    pub fn office() -> Self {
        Environment {
            rays: vec![
                MultipathRay {
                    excess_path_m: 1.2,
                    attenuation_db: 9.0,
                },
                MultipathRay {
                    excess_path_m: 3.5,
                    attenuation_db: 14.0,
                },
                MultipathRay {
                    excess_path_m: 6.1,
                    attenuation_db: 18.0,
                },
            ],
        }
    }

    /// Sums direct + multipath power for a one-way link at distance `d_m`
    /// (powers add incoherently — appropriate for the wideband FMCW signals
    /// here, where rays separate in delay).
    pub fn one_way_total_rx_dbm(&self, link: &OneWayLink, d_m: f64) -> f64 {
        let direct = db_to_pow(link.rx_power_dbm(d_m));
        let multi: f64 = self
            .rays
            .iter()
            .map(|r| db_to_pow(link.rx_power_dbm(d_m + r.excess_path_m) - r.attenuation_db))
            .sum();
        pow_to_db(direct + multi)
    }
}

/// Downlink SNR model: maps distance to the SNR of the beat tone at the tag
/// decoder's ADC.
///
/// This composes the one-way link budget with the tag's front-end insertion
/// loss and an output-referred decoder noise floor, calibrated per
/// DESIGN.md §2 so that the paper's operating points (≈16 dB SNR at 7 m with
/// the 9 GHz / 7 dBm prototype) are met.
#[derive(Debug, Clone, Copy)]
pub struct DownlinkBudget {
    /// One-way RF link.
    pub link: OneWayLink,
    /// Total tag front-end insertion loss (switch + splitters + delay lines
    /// + connectors), dB.
    pub tag_insertion_loss_db: f64,
    /// Output-referred decoder noise floor, dBm, in the envelope-detector
    /// measurement bandwidth (ADL6010 noise + ADC quantization).
    pub decoder_noise_floor_dbm: f64,
}

impl DownlinkBudget {
    /// SNR (dB) of the beat tone at distance `d_m`.
    pub fn snr_db(&self, d_m: f64) -> f64 {
        self.link.rx_power_dbm(d_m) - self.tag_insertion_loss_db - self.decoder_noise_floor_dbm
    }

    /// Distance (m) at which the link achieves `snr_db`, inverting the FSPL
    /// (useful for sweeping SNR via distance as the paper does).
    pub fn distance_for_snr(&self, snr_db: f64) -> f64 {
        let budget = self.link.tx_power_dbm + self.link.tx_gain_dbi + self.link.rx_gain_dbi
            - self.tag_insertion_loss_db
            - self.decoder_noise_floor_dbm;
        let fspl = budget - snr_db;
        // fspl = 20 log10(4 pi d f / c)  =>  d = c 10^(fspl/20) / (4 pi f)
        SPEED_OF_LIGHT * 10f64.powf(fspl / 20.0) / (4.0 * std::f64::consts::PI * self.link.freq_hz)
    }
}

/// Uplink SNR model: maps distance to the post-processing SNR of the tag's
/// modulated backscatter at the radar.
#[derive(Debug, Clone, Copy)]
pub struct UplinkBudget {
    /// Two-way backscatter link.
    pub link: TwoWayLink,
    /// Radar receiver noise figure, dB.
    pub radar_nf_db: f64,
    /// Radar IF bandwidth, Hz (sets the thermal floor before processing gain).
    pub if_bandwidth_hz: f64,
    /// Coherent processing gain, dB (range FFT plus Doppler FFT:
    /// `10 log10(N_fast · N_slow)` minus window losses).
    pub processing_gain_db: f64,
}

impl UplinkBudget {
    /// Post-processing SNR (dB) at distance `d_m`.
    pub fn snr_db(&self, d_m: f64) -> f64 {
        let noise = thermal_noise_dbm(self.if_bandwidth_hz, self.radar_nf_db);
        self.link.rx_power_dbm(d_m) - noise + self.processing_gain_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fspl_known_value() {
        // 1 m at 2.4 GHz: 40.05 dB.
        assert!((fspl_db(1.0, 2.4e9) - 40.05).abs() < 0.05);
        // 9.5 GHz at 7 m: ~68.9 dB.
        assert!((fspl_db(7.0, 9.5e9) - 68.9).abs() < 0.2);
    }

    #[test]
    fn fspl_slope_is_20db_per_decade() {
        let a = fspl_db(1.0, 9e9);
        let b = fspl_db(10.0, 9e9);
        assert!((b - a - 20.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fspl_rejects_zero_distance() {
        fspl_db(0.0, 1e9);
    }

    #[test]
    fn thermal_noise_reference() {
        // kTB for 1 Hz is -174 dBm; for 1 MHz, -114 dBm.
        assert!((thermal_noise_dbm(1.0, 0.0) + 174.0).abs() < 0.2);
        assert!((thermal_noise_dbm(1e6, 0.0) + 114.0).abs() < 0.2);
        assert!((thermal_noise_dbm(1e6, 10.0) + 104.0).abs() < 0.2);
    }

    #[test]
    fn one_way_power_decreases_with_distance() {
        let link = OneWayLink {
            tx_power_dbm: 7.0,
            tx_gain_dbi: 6.0,
            rx_gain_dbi: 6.0,
            freq_hz: 9.5e9,
        };
        let p1 = link.rx_power_dbm(1.0);
        let p7 = link.rx_power_dbm(7.0);
        assert!(p1 > p7);
        // One-way: 20 log10(7) = 16.9 dB difference.
        assert!((p1 - p7 - 16.9).abs() < 0.05);
    }

    #[test]
    fn two_way_power_falls_fourth_power() {
        let link = TwoWayLink {
            tx_power_dbm: 7.0,
            radar_gain_dbi: 15.0,
            freq_hz: 9.5e9,
            tag_rcs_dbsm: 0.0,
            misc_loss_db: 0.0,
        };
        let p1 = link.rx_power_dbm(1.0);
        let p10 = link.rx_power_dbm(10.0);
        // 40 dB per decade.
        assert!((p1 - p10 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn radar_equation_sanity() {
        // P_tx=1 W (30 dBm), G=30 dBi, f=10 GHz (λ=3 cm), σ=1 m², d=1 km:
        // P_rx = 1e3 mW * 1e6 * 9e-4 * 1 / (1984.4 * 1e12) ≈ 4.54e-10 mW
        //      ≈ -93.4 dBm.
        let link = TwoWayLink {
            tx_power_dbm: 30.0,
            radar_gain_dbi: 30.0,
            freq_hz: 10e9,
            tag_rcs_dbsm: 0.0,
            misc_loss_db: 0.0,
        };
        let p = link.rx_power_dbm(1000.0);
        assert!((p + 93.4).abs() < 0.3, "got {p}");
    }

    #[test]
    fn multipath_adds_power() {
        let link = OneWayLink {
            tx_power_dbm: 7.0,
            tx_gain_dbi: 6.0,
            rx_gain_dbi: 6.0,
            freq_hz: 9.5e9,
        };
        let fs = Environment::free_space().one_way_total_rx_dbm(&link, 3.0);
        let office = Environment::office().one_way_total_rx_dbm(&link, 3.0);
        assert!(office > fs);
        assert!(
            office - fs < 3.0,
            "multipath shouldn't dominate: +{}",
            office - fs
        );
    }

    #[test]
    fn downlink_budget_7m_operating_point() {
        // Calibration target from the paper (Fig. 13 caption): ~16 dB SNR at
        // 7 m with the 9 GHz prototype.
        let budget = DownlinkBudget {
            link: OneWayLink {
                tx_power_dbm: 7.0,
                tx_gain_dbi: 6.0,
                rx_gain_dbi: 6.0,
                freq_hz: 9.5e9,
            },
            tag_insertion_loss_db: 10.0,
            decoder_noise_floor_dbm: -76.0,
        };
        let snr = budget.snr_db(7.0);
        assert!((snr - 16.0).abs() < 1.0, "got {snr} dB at 7 m");
    }

    #[test]
    fn distance_for_snr_inverts_snr_db() {
        let budget = DownlinkBudget {
            link: OneWayLink {
                tx_power_dbm: 7.0,
                tx_gain_dbi: 6.0,
                rx_gain_dbi: 6.0,
                freq_hz: 9.5e9,
            },
            tag_insertion_loss_db: 10.0,
            decoder_noise_floor_dbm: -76.0,
        };
        for &snr in &[5.0, 16.0, 30.0] {
            let d = budget.distance_for_snr(snr);
            assert!((budget.snr_db(d) - snr).abs() < 1e-9, "snr {snr}: d {d}");
        }
    }

    #[test]
    fn uplink_snr_monotone_decreasing() {
        let budget = UplinkBudget {
            link: TwoWayLink {
                tx_power_dbm: 7.0,
                radar_gain_dbi: 15.0,
                freq_hz: 9.5e9,
                tag_rcs_dbsm: 5.0,
                misc_loss_db: 6.0,
            },
            radar_nf_db: 12.0,
            if_bandwidth_hz: 2e6,
            processing_gain_db: 30.0,
        };
        let mut last = f64::INFINITY;
        for i in 1..=14 {
            let d = 0.5 * i as f64;
            let snr = budget.snr_db(d);
            assert!(snr < last);
            last = snr;
        }
    }
}
