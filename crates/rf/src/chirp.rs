//! FMCW chirp parameterization and phase-exact synthesis.
//!
//! A chirp is a linear frequency sweep: starting frequency `f0`, bandwidth
//! `B`, duration `T_chirp`, hence slope `α = B / T_chirp` (paper eq. 1). The
//! CSSK downlink (paper §3.1) fixes `B` — preserving range resolution
//! `c / 2B` — and varies `T_chirp`, so slope is the modulated quantity.
//!
//! We use the conventional FMCW phase `φ(t) = 2π (f0 t + α t² / 2)` whose
//! instantaneous frequency is `f0 + α t` (see DESIGN.md §5 for the note on
//! the paper's eq. 1 notation).

use biscatter_dsp::{SPEED_OF_LIGHT, TAU};

/// Parameters of a single FMCW chirp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chirp {
    /// Starting (carrier) frequency `f0`, Hz.
    pub f0: f64,
    /// Swept bandwidth `B`, Hz.
    pub bandwidth: f64,
    /// Sweep duration `T_chirp`, seconds.
    pub duration: f64,
}

impl Chirp {
    /// Creates a chirp, validating that all parameters are positive.
    ///
    /// # Panics
    /// Panics on non-positive bandwidth or duration, or negative `f0`.
    pub fn new(f0: f64, bandwidth: f64, duration: f64) -> Self {
        assert!(f0 >= 0.0, "f0 must be non-negative");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(duration > 0.0, "duration must be positive");
        Chirp {
            f0,
            bandwidth,
            duration,
        }
    }

    /// Chirp slope `α = B / T_chirp`, Hz/s.
    pub fn slope(&self) -> f64 {
        self.bandwidth / self.duration
    }

    /// Instantaneous frequency at time `t` into the sweep (clamped to the
    /// sweep interval).
    pub fn instantaneous_freq(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, self.duration);
        self.f0 + self.slope() * t
    }

    /// Center frequency of the sweep.
    pub fn center_freq(&self) -> f64 {
        self.f0 + self.bandwidth / 2.0
    }

    /// Phase (radians) at time `t` into the sweep:
    /// `2π (f0 t + α t² / 2)`.
    pub fn phase(&self, t: f64) -> f64 {
        TAU * (self.f0 * t + 0.5 * self.slope() * t * t)
    }

    /// Samples the real passband waveform at rate `fs` over the sweep.
    /// Intended for validation at scaled-down carrier frequencies; full-rate
    /// GHz synthesis is deliberately avoided elsewhere (see DESIGN.md §5).
    pub fn sample_passband(&self, fs: f64, amplitude: f64) -> Vec<f64> {
        let n = (self.duration * fs).round() as usize;
        (0..n)
            .map(|i| amplitude * self.phase(i as f64 / fs).cos())
            .collect()
    }

    /// Range resolution this chirp provides: `c / 2B` (paper eq. 5).
    pub fn range_resolution(&self) -> f64 {
        SPEED_OF_LIGHT / (2.0 * self.bandwidth)
    }

    /// Maximum unambiguous range for an IF receiver sampling at `fs`
    /// (paper eq. 4): `R_max = fs c T_chirp / (2B)`.
    pub fn max_unambiguous_range(&self, fs: f64) -> f64 {
        fs * SPEED_OF_LIGHT * self.duration / (2.0 * self.bandwidth)
    }

    /// Beat (IF) frequency produced by a reflection at range `r`
    /// (paper eq. 3): `f_IF = 2 α r / c`.
    pub fn beat_freq_for_range(&self, range_m: f64) -> f64 {
        2.0 * self.slope() * range_m / SPEED_OF_LIGHT
    }

    /// Inverse of [`Chirp::beat_freq_for_range`]: the range corresponding to
    /// an observed IF frequency.
    pub fn range_for_beat_freq(&self, f_if: f64) -> f64 {
        f_if * SPEED_OF_LIGHT / (2.0 * self.slope())
    }

    /// Number of IF samples captured during the sweep at ADC rate `fs`
    /// (rounded to the nearest sample to absorb floating-point error in
    /// `duration * fs`).
    pub fn if_samples(&self, fs: f64) -> usize {
        (self.duration * fs).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(x: f64) -> f64 {
        x * 1e9
    }
    fn us(x: f64) -> f64 {
        x * 1e-6
    }

    #[test]
    fn slope_definition() {
        let c = Chirp::new(ghz(9.0), ghz(1.0), us(100.0));
        assert!((c.slope() - 1e13).abs() < 1.0);
    }

    #[test]
    fn instantaneous_freq_sweeps_bandwidth() {
        let c = Chirp::new(ghz(9.0), ghz(1.0), us(50.0));
        assert_eq!(c.instantaneous_freq(0.0), ghz(9.0));
        assert!((c.instantaneous_freq(us(50.0)) - ghz(10.0)).abs() < 1.0);
        // Clamped beyond the sweep.
        assert!((c.instantaneous_freq(1.0) - ghz(10.0)).abs() < 1.0);
        assert!((c.center_freq() - ghz(9.5)).abs() < 1.0);
    }

    #[test]
    fn phase_derivative_matches_frequency() {
        let c = Chirp::new(1e6, 1e6, 1e-3);
        let dt = 1e-9;
        for &t in &[0.1e-3, 0.5e-3, 0.9e-3] {
            let f_num = (c.phase(t + dt) - c.phase(t - dt)) / (2.0 * dt) / TAU;
            let f_ana = c.instantaneous_freq(t);
            assert!(
                (f_num - f_ana).abs() / f_ana < 1e-6,
                "at {t}: {f_num} vs {f_ana}"
            );
        }
    }

    #[test]
    fn range_resolution_values() {
        // 1 GHz -> 15 cm; 250 MHz -> 60 cm (paper's two radars).
        let wide = Chirp::new(ghz(9.0), ghz(1.0), us(100.0));
        let narrow = Chirp::new(ghz(24.0), 250e6, us(100.0));
        assert!((wide.range_resolution() - 0.1499).abs() < 1e-3);
        assert!((narrow.range_resolution() - 0.5996).abs() < 1e-3);
    }

    #[test]
    fn beat_freq_roundtrip() {
        let c = Chirp::new(ghz(24.0), 250e6, us(120.0));
        for &r in &[0.5, 3.0, 7.0] {
            let f = c.beat_freq_for_range(r);
            assert!((c.range_for_beat_freq(f) - r).abs() < 1e-9);
        }
    }

    #[test]
    fn beat_freq_example() {
        // 1 GHz / 100 us chirp, target at 5 m:
        // f_IF = 2 * 1e13 * 5 / 3e8 = 333.6 kHz.
        let c = Chirp::new(ghz(9.0), ghz(1.0), us(100.0));
        let f = c.beat_freq_for_range(5.0);
        assert!((f - 333_564.0).abs() < 100.0, "got {f}");
    }

    #[test]
    fn max_range_scales_with_duration() {
        let fs = 2e6;
        let short = Chirp::new(ghz(9.0), ghz(1.0), us(20.0));
        let long = Chirp::new(ghz(9.0), ghz(1.0), us(200.0));
        let r_s = short.max_unambiguous_range(fs);
        let r_l = long.max_unambiguous_range(fs);
        assert!((r_l / r_s - 10.0).abs() < 1e-9);
        // Values: R = fs c T / 2B = 2e6*3e8*20e-6/2e9 = 6 m.
        assert!((r_s - 5.996).abs() < 0.01, "got {r_s}");
    }

    #[test]
    fn passband_sampling_count_and_energy() {
        let c = Chirp::new(1e5, 1e5, 1e-3);
        let fs = 2e6;
        let s = c.sample_passband(fs, 2.0);
        assert_eq!(s.len(), 2000);
        let rms = (s.iter().map(|x| x * x).sum::<f64>() / s.len() as f64).sqrt();
        assert!((rms - 2.0 / 2f64.sqrt()).abs() < 0.05);
    }

    #[test]
    fn if_sample_count() {
        let c = Chirp::new(ghz(9.0), ghz(1.0), us(100.0));
        assert_eq!(c.if_samples(2e6), 200);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn rejects_zero_duration() {
        Chirp::new(1e9, 1e9, 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn rejects_zero_bandwidth() {
        Chirp::new(1e9, 0.0, 1e-6);
    }
}
