//! Two-way power splitter/combiner (ZC2PD-18263-S+ class).
//!
//! The tag decoder uses one splitter to divide the incident signal between
//! the two delay lines and a second, reversed, to recombine them
//! (paper Fig. 4). An ideal 2-way split costs 3.01 dB per port; real parts
//! add an excess insertion loss.

/// A 2-way splitter/combiner model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Splitter {
    /// Excess insertion loss beyond the ideal 3.01 dB split, dB.
    pub excess_loss_db: f64,
    /// Amplitude imbalance between the two output ports, dB
    /// (port A is `+imbalance/2`, port B `−imbalance/2` relative to nominal).
    pub imbalance_db: f64,
}

impl Splitter {
    /// Ideal lossless splitter.
    pub fn ideal() -> Self {
        Splitter {
            excess_loss_db: 0.0,
            imbalance_db: 0.0,
        }
    }

    /// Typical Mini-Circuits-class part at X band.
    pub fn zc2pd() -> Self {
        Splitter {
            excess_loss_db: 0.6,
            imbalance_db: 0.15,
        }
    }

    /// Per-port insertion loss in dB when used as a splitter
    /// (ideal 3.01 dB + excess, ± half the imbalance).
    pub fn port_loss_db(&self, port: SplitPort) -> f64 {
        let base = 3.0103 + self.excess_loss_db;
        match port {
            SplitPort::A => base - self.imbalance_db / 2.0,
            SplitPort::B => base + self.imbalance_db / 2.0,
        }
    }

    /// Loss in dB when used as a combiner (same reciprocal loss per input).
    pub fn combine_loss_db(&self) -> f64 {
        3.0103 + self.excess_loss_db
    }

    /// Amplitude transmission factor (linear) for a port.
    pub fn port_amplitude(&self, port: SplitPort) -> f64 {
        10f64.powf(-self.port_loss_db(port) / 20.0)
    }
}

/// Output port selector for [`Splitter::port_loss_db`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitPort {
    /// First output port.
    A,
    /// Second output port.
    B,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_split_is_3db() {
        let s = Splitter::ideal();
        assert!((s.port_loss_db(SplitPort::A) - 3.0103).abs() < 1e-9);
        assert!((s.port_loss_db(SplitPort::B) - 3.0103).abs() < 1e-9);
    }

    #[test]
    fn ideal_split_conserves_power() {
        let s = Splitter::ideal();
        let pa = s.port_amplitude(SplitPort::A).powi(2);
        let pb = s.port_amplitude(SplitPort::B).powi(2);
        assert!((pa + pb - 1.0).abs() < 1e-4);
    }

    #[test]
    fn real_part_lossier_than_ideal() {
        let s = Splitter::zc2pd();
        assert!(s.port_loss_db(SplitPort::A) > 3.0);
        assert!(s.combine_loss_db() > 3.5);
    }

    #[test]
    fn imbalance_splits_asymmetrically() {
        let s = Splitter {
            excess_loss_db: 0.0,
            imbalance_db: 1.0,
        };
        assert!(s.port_loss_db(SplitPort::A) < s.port_loss_db(SplitPort::B));
        assert!((s.port_loss_db(SplitPort::B) - s.port_loss_db(SplitPort::A) - 1.0).abs() < 1e-12);
    }
}
