//! Square-law envelope detector (ADL6010 class).
//!
//! The combined two-arm signal `s₁(t) + s₂(t)` enters the detector; the
//! square-law characteristic produces `(s₁+s₂)² = s₁² + s₂² + 2 s₁ s₂`, and
//! the internal low-pass filter removes the double-carrier terms, leaving a
//! DC level plus the cross term — the beat tone at `Δf = α ΔT` (paper eq. 9).
//! The combination of splitter + detector "is essentially equivalent to a
//! mixer" (paper §3.2.1).
//!
//! The model exposes the detector law on sampled waveforms (for the scaled
//! passband validation path) and its noise floor / bandwidth parameters (for
//! the analytic envelope path).

use biscatter_dsp::filter::SinglePoleLowPass;

/// Envelope detector model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeDetector {
    /// Video (output) bandwidth of the internal low-pass, Hz. The ADL6010
    /// supports ~40 MHz; the decoder only needs a few hundred kHz.
    pub video_bandwidth_hz: f64,
    /// Output-referred noise floor, dBm, integrated over the video bandwidth.
    pub noise_floor_dbm: f64,
    /// Detector responsivity scale (output volts per input watt, arbitrary
    /// units in this simulation — it cancels in SNR terms).
    pub responsivity: f64,
}

impl EnvelopeDetector {
    /// An ADL6010-like detector configured for the BiScatter decoder.
    pub fn adl6010() -> Self {
        EnvelopeDetector {
            video_bandwidth_hz: 500e3,
            noise_floor_dbm: -72.0,
            responsivity: 1.0,
        }
    }

    /// Applies the square-law + low-pass chain to a sampled RF waveform at
    /// sample rate `fs`. Used by the scaled-passband validation path.
    pub fn detect(&self, rf: &[f64], fs: f64) -> Vec<f64> {
        let cutoff = (self.video_bandwidth_hz).min(0.45 * fs);
        let mut lpf = SinglePoleLowPass::from_cutoff(cutoff, fs);
        // Two cascaded poles give a steeper rolloff, closer to the part's
        // measured response, and suppress the 2·f0 ripple more convincingly.
        let mut lpf2 = SinglePoleLowPass::from_cutoff(cutoff, fs);
        rf.iter()
            .map(|&x| lpf2.process(lpf.process(self.responsivity * x * x)))
            .collect()
    }

    /// The ideal (noise-free) analytic envelope output for two equal-amplitude
    /// chirp arms with phase difference `delta_phi` at one instant:
    /// `r/2 · a² · (1 + cos Δφ)` — derived from low-passing
    /// `(a cos φ₁ + a cos φ₂)²`.
    pub fn analytic_output(&self, arm_amplitude: f64, delta_phi: f64) -> f64 {
        self.responsivity * arm_amplitude * arm_amplitude * (1.0 + delta_phi.cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biscatter_dsp::signal::tone;
    use biscatter_dsp::spectrum::{find_peak, periodogram};
    use biscatter_dsp::window::WindowKind;

    #[test]
    fn detects_beat_of_two_tones() {
        // Two tones at f and f+df: after square law + LPF, output contains df.
        let fs = 1_000_000.0;
        let f1 = 200_000.0;
        let df = 5_000.0;
        let n = 20_000;
        let a = tone(n, f1, fs, 1.0, 0.0);
        let b = tone(n, f1 + df, fs, 1.0, 0.0);
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let det = EnvelopeDetector {
            video_bandwidth_hz: 20_000.0,
            noise_floor_dbm: -70.0,
            responsivity: 1.0,
        };
        let out = det.detect(&sum, fs);
        // Remove DC before peak search.
        let mean = out.iter().sum::<f64>() / out.len() as f64;
        let ac: Vec<f64> = out.iter().map(|v| v - mean).collect();
        let (freqs, power) = periodogram(&ac[2000..], fs, WindowKind::Hann);
        let peak = find_peak(&power).unwrap();
        let f_est = peak.refined_bin * freqs[1];
        assert!((f_est - df).abs() < 200.0, "beat at {f_est}, expected {df}");
    }

    #[test]
    fn suppresses_double_frequency() {
        // A single tone squares to DC + 2f; with a tight LPF the 2f ripple is
        // strongly attenuated.
        let fs = 1_000_000.0;
        let f = 200_000.0;
        let x = tone(50_000, f, fs, 1.0, 0.0);
        let det = EnvelopeDetector {
            video_bandwidth_hz: 10_000.0,
            noise_floor_dbm: -70.0,
            responsivity: 1.0,
        };
        let out = det.detect(&x, fs);
        let tail = &out[10_000..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let ripple = tail.iter().map(|v| (v - mean).abs()).fold(0.0f64, f64::max);
        assert!((mean - 0.5).abs() < 0.02, "DC should be a²/2, got {mean}");
        assert!(ripple < 0.02, "2f ripple too strong: {ripple}");
    }

    #[test]
    fn analytic_output_range() {
        let det = EnvelopeDetector::adl6010();
        // In-phase arms: maximum output 2a²; anti-phase: zero.
        assert!((det.analytic_output(1.0, 0.0) - 2.0).abs() < 1e-12);
        assert!(det.analytic_output(1.0, std::f64::consts::PI) < 1e-12);
        // Quadrature: a².
        assert!((det.analytic_output(2.0, std::f64::consts::FRAC_PI_2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn analytic_matches_passband_dc_and_swing() {
        // Cross-check: two equal tones with slowly varying phase difference
        // produce an envelope whose min/max match the analytic formula.
        let fs = 2_000_000.0;
        let f1 = 300_000.0;
        let df = 1_000.0; // slow beat
        let n = 4_000_000; // two beat periods
        let det = EnvelopeDetector {
            video_bandwidth_hz: 20_000.0,
            noise_floor_dbm: -70.0,
            responsivity: 1.0,
        };
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (std::f64::consts::TAU * f1 * t).cos()
                    + (std::f64::consts::TAU * (f1 + df) * t).cos()
            })
            .collect();
        let out = det.detect(&x, fs);
        let tail = &out[n / 2..];
        let max = tail.iter().cloned().fold(f64::MIN, f64::max);
        let min = tail.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            (max - det.analytic_output(1.0, 0.0)).abs() < 0.1,
            "max {max}"
        );
        assert!(min.abs() < 0.1, "min {min}");
    }
}
