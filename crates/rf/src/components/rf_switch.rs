//! SPDT RF switch (ADRF5144 class).
//!
//! The switch sits in the middle of the Van Atta transmission line
//! (paper Fig. 2). In the **reflective** state it completes the line and the
//! tag retro-reflects; in the **absorptive** state it routes antenna 1 into
//! the decoder (50 Ω matched) and internally terminates antenna 2, absorbing
//! the incident wave. Toggling between the states at the modulation rate
//! amplitude-modulates the backscatter for uplink.

/// Switch throw state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchState {
    /// Transmission line completed: tag retro-reflects.
    Reflective,
    /// Signal routed to the decoder; reflection suppressed.
    Absorptive,
}

/// SPDT switch model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfSwitch {
    /// Insertion loss in the through path, dB.
    pub insertion_loss_db: f64,
    /// Isolation of the off path, dB (limits the modulation depth: in the
    /// absorptive state a residual `-isolation` reflection leaks through).
    pub isolation_db: f64,
    /// Maximum toggle rate, Hz (bounds the uplink modulation frequency).
    pub max_switch_rate_hz: f64,
    /// Static power consumption, watts.
    pub power_w: f64,
}

impl RfSwitch {
    /// ADRF5144-like part: low loss, high isolation, fast, micro-watt drive
    /// (paper §4.1: 2.86 µW).
    pub fn adrf5144() -> Self {
        RfSwitch {
            insertion_loss_db: 0.8,
            isolation_db: 40.0,
            max_switch_rate_hz: 50e6,
            power_w: 2.86e-6,
        }
    }

    /// Amplitude transmission factor (linear) toward the *reflection* path
    /// for the given state. `Reflective` passes with insertion loss;
    /// `Absorptive` leaks only the isolation residual.
    pub fn reflection_amplitude(&self, state: SwitchState) -> f64 {
        match state {
            SwitchState::Reflective => 10f64.powf(-self.insertion_loss_db / 20.0),
            SwitchState::Absorptive => 10f64.powf(-self.isolation_db / 20.0),
        }
    }

    /// Amplitude transmission factor toward the *decoder* path.
    /// Only the absorptive state feeds the decoder.
    pub fn decoder_amplitude(&self, state: SwitchState) -> f64 {
        match state {
            SwitchState::Reflective => 10f64.powf(-self.isolation_db / 20.0),
            SwitchState::Absorptive => 10f64.powf(-self.insertion_loss_db / 20.0),
        }
    }

    /// Modulation depth achievable by toggling states: the power ratio
    /// between reflective and absorptive reflections, dB.
    pub fn modulation_depth_db(&self) -> f64 {
        self.isolation_db - self.insertion_loss_db
    }

    /// Returns true if the switch supports toggling at `rate_hz`.
    pub fn supports_rate(&self, rate_hz: f64) -> bool {
        rate_hz <= self.max_switch_rate_hz
    }

    /// The switch state at time `t` when driven by a square wave of
    /// frequency `mod_freq_hz` with the given duty cycle.
    ///
    /// # Panics
    /// Panics if the rate exceeds the switch capability.
    pub fn state_at(&self, t: f64, mod_freq_hz: f64, duty: f64) -> SwitchState {
        assert!(
            self.supports_rate(mod_freq_hz),
            "modulation {mod_freq_hz} Hz exceeds switch limit {} Hz",
            self.max_switch_rate_hz
        );
        let phase = (t * mod_freq_hz).rem_euclid(1.0);
        if phase < duty {
            SwitchState::Reflective
        } else {
            SwitchState::Absorptive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflective_passes_absorptive_blocks() {
        let sw = RfSwitch::adrf5144();
        let on = sw.reflection_amplitude(SwitchState::Reflective);
        let off = sw.reflection_amplitude(SwitchState::Absorptive);
        assert!(on > 0.9);
        assert!(off < 0.02);
    }

    #[test]
    fn decoder_path_mirrors_reflection_path() {
        let sw = RfSwitch::adrf5144();
        assert!(
            sw.decoder_amplitude(SwitchState::Absorptive)
                > sw.decoder_amplitude(SwitchState::Reflective)
        );
    }

    #[test]
    fn modulation_depth() {
        let sw = RfSwitch::adrf5144();
        assert!((sw.modulation_depth_db() - 39.2).abs() < 1e-9);
    }

    #[test]
    fn state_follows_square_wave() {
        let sw = RfSwitch::adrf5144();
        let f = 1000.0;
        assert_eq!(sw.state_at(0.0, f, 0.5), SwitchState::Reflective);
        assert_eq!(sw.state_at(0.00049, f, 0.5), SwitchState::Reflective);
        assert_eq!(sw.state_at(0.00051, f, 0.5), SwitchState::Absorptive);
        assert_eq!(sw.state_at(0.001, f, 0.5), SwitchState::Reflective);
    }

    #[test]
    fn duty_cycle_respected() {
        let sw = RfSwitch::adrf5144();
        let f = 100.0;
        let samples = 10_000;
        let reflective = (0..samples)
            .filter(|&i| {
                sw.state_at(i as f64 / samples as f64 * 0.1, f, 0.25) == SwitchState::Reflective
            })
            .count();
        assert!((reflective as f64 / samples as f64 - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "exceeds switch limit")]
    fn rate_limit_enforced() {
        let sw = RfSwitch::adrf5144();
        sw.state_at(0.0, 100e6, 0.5);
    }

    #[test]
    fn supports_rate_boundary() {
        let sw = RfSwitch::adrf5144();
        assert!(sw.supports_rate(50e6));
        assert!(!sw.supports_rate(50e6 + 1.0));
    }
}
