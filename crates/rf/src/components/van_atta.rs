//! Van Atta retro-reflector array.
//!
//! A Van Atta array connects antenna pairs with equal-length transmission
//! lines so the re-radiated wave retraces the incident direction
//! (paper §2.3). This gives the tag a large *effective* radar cross-section
//! toward the radar without active beam steering — the property that keeps
//! uplink SNR usable at 7 m despite `1/d⁴` backscatter loss (paper Fig. 15).
//!
//! The model computes the effective RCS of an N-element array of
//! gain-`G` elements, `σ_eff = N² G² λ² / (4π)`, and the retro-reflection
//! pattern versus incidence angle (broad for a retro array, narrow for a
//! conventional static reflector of the same aperture — the comparison
//! baseline in experiment E5).

use crate::SPEED_OF_LIGHT;
use biscatter_dsp::stats::pow_to_db;

/// Van Atta retro-reflector model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VanAtta {
    /// Number of antenna elements (the paper's tag uses 2).
    pub n_elements: usize,
    /// Per-element gain, dBi (patch antennas: ~5–6 dBi).
    pub element_gain_dbi: f64,
    /// Element spacing in wavelengths (λ/2 typical).
    pub spacing_wavelengths: f64,
    /// Transmission-line loss between the element pairs, dB.
    pub line_loss_db: f64,
}

impl VanAtta {
    /// The paper's 2-element tag array.
    pub fn two_element() -> Self {
        VanAtta {
            n_elements: 2,
            element_gain_dbi: 5.0,
            spacing_wavelengths: 0.5,
            line_loss_db: 1.0,
        }
    }

    /// Effective radar cross-section toward the incidence direction, dBsm,
    /// at carrier frequency `f_hz`: `σ = N² G² λ² / (4π)` minus line loss.
    pub fn effective_rcs_dbsm(&self, f_hz: f64) -> f64 {
        let lambda = SPEED_OF_LIGHT / f_hz;
        let g = 10f64.powf(self.element_gain_dbi / 10.0);
        let n = self.n_elements as f64;
        let sigma = n * n * g * g * lambda * lambda / (4.0 * std::f64::consts::PI);
        pow_to_db(sigma) - self.line_loss_db
    }

    /// Normalized retro-reflected power (0..1) versus incidence angle
    /// `theta` radians off boresight.
    ///
    /// For a retro-directive array the response follows the *element*
    /// pattern only (the array factor self-compensates); we model the element
    /// as `cos²(θ)` — broad. Beyond ±90° nothing reflects.
    pub fn retro_pattern(&self, theta_rad: f64) -> f64 {
        let t = theta_rad.abs();
        if t >= std::f64::consts::FRAC_PI_2 {
            return 0.0;
        }
        t.cos().powi(2)
    }

    /// Normalized reflected power of a *non-retro-directive* reference
    /// reflector with the same aperture (specular plate): the array factor
    /// does **not** compensate, so the response collapses as
    /// `sinc²(N π d/λ sin 2θ)` off boresight — the baseline the paper's
    /// retro-reflectivity is compared against.
    pub fn specular_pattern(&self, theta_rad: f64) -> f64 {
        let t = theta_rad.abs();
        if t >= std::f64::consts::FRAC_PI_2 {
            return 0.0;
        }
        // A specular reflector returns energy at the mirror angle; toward the
        // source the monostatic response has an array-factor rolloff in
        // sin(2θ) (round-trip path difference across the aperture).
        let x = self.n_elements as f64
            * std::f64::consts::PI
            * self.spacing_wavelengths
            * (2.0 * t).sin();
        let af = if x.abs() < 1e-12 { 1.0 } else { x.sin() / x };
        (af * af) * t.cos().powi(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcs_grows_with_elements() {
        let two = VanAtta::two_element();
        let four = VanAtta {
            n_elements: 4,
            ..two
        };
        // N² scaling: 4 elements = +6 dB over 2.
        let d = four.effective_rcs_dbsm(24e9) - two.effective_rcs_dbsm(24e9);
        assert!((d - 6.02).abs() < 0.01, "got {d}");
    }

    #[test]
    fn rcs_larger_at_lower_frequency() {
        // λ² term: 9 GHz aperture beats 24 GHz for the same gains.
        let v = VanAtta::two_element();
        assert!(v.effective_rcs_dbsm(9.5e9) > v.effective_rcs_dbsm(24e9));
        // Ratio is 20 log10(24/9.5) = 8.05 dB.
        let d = v.effective_rcs_dbsm(9.5e9) - v.effective_rcs_dbsm(24e9);
        assert!((d - 8.05).abs() < 0.05);
    }

    #[test]
    fn rcs_plausible_magnitude() {
        // 2-element, 5 dBi at 9.5 GHz: σ = 4·10·(0.0316)²/(4π) ≈ 3.2e-3 m²
        // ≈ -25 dBsm before line loss.
        let v = VanAtta {
            line_loss_db: 0.0,
            ..VanAtta::two_element()
        };
        let rcs = v.effective_rcs_dbsm(9.5e9);
        assert!((rcs + 25.0).abs() < 1.0, "got {rcs}");
    }

    #[test]
    fn retro_pattern_broad() {
        let v = VanAtta::two_element();
        // At 45° the retro reflector still returns half power.
        assert!(v.retro_pattern(std::f64::consts::FRAC_PI_4) > 0.45);
        assert_eq!(v.retro_pattern(std::f64::consts::FRAC_PI_2), 0.0);
        assert!((v.retro_pattern(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn specular_pattern_collapses_off_boresight() {
        let v = VanAtta {
            n_elements: 8,
            ..VanAtta::two_element()
        };
        let retro_45 = v.retro_pattern(std::f64::consts::FRAC_PI_4);
        let spec_45 = v.specular_pattern(std::f64::consts::FRAC_PI_4);
        assert!(
            spec_45 < retro_45 / 10.0,
            "specular {spec_45} should be far below retro {retro_45}"
        );
        // Both agree at boresight.
        assert!((v.specular_pattern(0.0) - v.retro_pattern(0.0)).abs() < 1e-9);
    }

    #[test]
    fn patterns_symmetric() {
        let v = VanAtta::two_element();
        for i in 1..9 {
            let t = i as f64 * 0.15;
            assert!((v.retro_pattern(t) - v.retro_pattern(-t)).abs() < 1e-12);
            assert!((v.specular_pattern(t) - v.specular_pattern(-t)).abs() < 1e-12);
        }
    }
}
