//! Delay-line model: the heart of the tag decoder.
//!
//! The tag splits the incident chirp between two transmission lines whose
//! *length difference* `ΔL` sets the differential delay `ΔT = ΔL / (k c)`
//! (paper eq. 10), where `k` is the velocity factor (≈0.7 for coax, lower
//! for microstrip on high-εr substrates). The resulting beat frequency is
//! `Δf = B ΔL / (T_chirp k c)` (paper eq. 11).
//!
//! Real lines are dispersive — the velocity factor drifts across a GHz of
//! bandwidth — and lossy. Both effects matter: dispersion smears the beat
//! tone (motivating the paper's one-time calibration), and insertion loss
//! eats link budget (paper §6 "Delay-line Length" trade-off). The
//! [`MeanderLine`] variant additionally models the PCB meander structure of
//! paper Figs. 9–11 (Rogers 3006, 1.26 ns across 64 mm × 3 mm).

use crate::SPEED_OF_LIGHT;

/// A transmission-line delay element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayLine {
    /// Physical length, metres.
    pub length_m: f64,
    /// Velocity factor `k` at the reference frequency (fraction of `c`).
    pub velocity_factor: f64,
    /// Insertion loss per metre at the reference frequency, dB/m.
    pub loss_db_per_m: f64,
    /// Reference frequency for `velocity_factor` and loss, Hz.
    pub ref_freq_hz: f64,
    /// Fractional change of the velocity factor per GHz of offset from the
    /// reference frequency (dispersion). Zero for an ideal line.
    pub dispersion_per_ghz: f64,
}

impl DelayLine {
    /// An idealized coax line (k = 0.7, modest loss), as used in the paper's
    /// wired validation experiment (Fig. 5).
    pub fn coax(length_m: f64, ref_freq_hz: f64) -> Self {
        DelayLine {
            length_m,
            velocity_factor: 0.7,
            loss_db_per_m: 1.0,
            ref_freq_hz,
            dispersion_per_ghz: 0.0,
        }
    }

    /// Velocity factor at frequency `f` (linear dispersion model).
    pub fn velocity_factor_at(&self, f_hz: f64) -> f64 {
        let delta_ghz = (f_hz - self.ref_freq_hz) / 1e9;
        (self.velocity_factor * (1.0 + self.dispersion_per_ghz * delta_ghz)).max(1e-3)
    }

    /// Group delay through the line at frequency `f`, seconds.
    pub fn delay_at(&self, f_hz: f64) -> f64 {
        self.length_m / (self.velocity_factor_at(f_hz) * SPEED_OF_LIGHT)
    }

    /// Group delay at the reference frequency.
    pub fn delay(&self) -> f64 {
        self.delay_at(self.ref_freq_hz)
    }

    /// Total insertion loss, dB (loss grows ~√f above the reference, the
    /// skin-effect trend).
    pub fn insertion_loss_db(&self, f_hz: f64) -> f64 {
        let scale = (f_hz / self.ref_freq_hz).max(0.0).sqrt();
        self.loss_db_per_m * self.length_m * scale
    }
}

/// A matched pair of delay lines with length difference `ΔL`, as in the tag
/// decoder (paper Fig. 4). Computes the differential quantities the decoder
/// depends on.
#[derive(Debug, Clone, Copy)]
pub struct DelayLinePair {
    /// The shorter line.
    pub short: DelayLine,
    /// The longer line.
    pub long: DelayLine,
}

impl DelayLinePair {
    /// Builds a pair from a base length and a difference `ΔL`, sharing the
    /// line technology of `proto`.
    pub fn from_difference(proto: DelayLine, base_length_m: f64, delta_l_m: f64) -> Self {
        assert!(delta_l_m > 0.0, "ΔL must be positive");
        let mut short = proto;
        short.length_m = base_length_m;
        let mut long = proto;
        long.length_m = base_length_m + delta_l_m;
        DelayLinePair { short, long }
    }

    /// Length difference `ΔL`, metres.
    pub fn delta_l(&self) -> f64 {
        self.long.length_m - self.short.length_m
    }

    /// Differential delay `ΔT` at frequency `f` (paper eq. 10, but evaluated
    /// with each line's own dispersive delay).
    pub fn delta_t_at(&self, f_hz: f64) -> f64 {
        self.long.delay_at(f_hz) - self.short.delay_at(f_hz)
    }

    /// Differential delay at the reference frequency.
    pub fn delta_t(&self) -> f64 {
        self.delta_t_at(self.short.ref_freq_hz)
    }

    /// Predicted beat frequency for a chirp of bandwidth `b_hz` and duration
    /// `t_chirp_s` (paper eq. 11): `Δf = α ΔT = B ΔT / T_chirp`.
    pub fn beat_freq(&self, b_hz: f64, t_chirp_s: f64) -> f64 {
        b_hz * self.delta_t() / t_chirp_s
    }

    /// Mean insertion loss of the two arms at frequency `f`, dB. (The two
    /// arms recombine; the average is the effective arm loss.)
    pub fn mean_insertion_loss_db(&self, f_hz: f64) -> f64 {
        0.5 * (self.short.insertion_loss_db(f_hz) + self.long.insertion_loss_db(f_hz))
    }
}

/// PCB microstrip meander delay line (paper §4, Figs. 9–11).
///
/// Models the measured behaviour of the HFSS design: a target delay set by
/// the effective permittivity and meander length, an insertion loss that
/// rises with frequency, and an |S11| return-loss ripple caused by the
/// meander discontinuities.
#[derive(Debug, Clone, Copy)]
pub struct MeanderLine {
    /// Total electrical (unwrapped) trace length, metres.
    pub trace_length_m: f64,
    /// Substrate relative permittivity (Rogers 3006: εr = 6.15).
    pub epsilon_r: f64,
    /// Conductor + dielectric loss at the design frequency, dB per metre.
    pub loss_db_per_m: f64,
    /// Design (center) frequency, Hz.
    pub design_freq_hz: f64,
    /// Number of meander turns (sets the S11 ripple period).
    pub n_turns: usize,
}

impl MeanderLine {
    /// The paper's 9 GHz design: Rogers 3006, 1.26 ns delay, 64 mm × 3 mm
    /// footprint. The trace length is derived from the delay target.
    pub fn paper_9ghz_design() -> Self {
        let epsilon_eff = effective_permittivity(6.15);
        // delay = L sqrt(eps_eff) / c  =>  L = delay * c / sqrt(eps_eff)
        let trace_length_m = 1.26e-9 * SPEED_OF_LIGHT / epsilon_eff.sqrt();
        MeanderLine {
            trace_length_m,
            epsilon_r: 6.15,
            loss_db_per_m: 14.0,
            design_freq_hz: 9.5e9,
            n_turns: 16,
        }
    }

    /// Effective permittivity seen by the quasi-TEM microstrip mode.
    pub fn epsilon_eff(&self) -> f64 {
        effective_permittivity(self.epsilon_r)
    }

    /// Group delay, seconds.
    pub fn delay(&self) -> f64 {
        self.trace_length_m * self.epsilon_eff().sqrt() / SPEED_OF_LIGHT
    }

    /// Velocity factor equivalent (`1/sqrt(eps_eff)`), for use as a
    /// [`DelayLine`].
    pub fn velocity_factor(&self) -> f64 {
        1.0 / self.epsilon_eff().sqrt()
    }

    /// Insertion loss |S21| in dB at frequency `f` (skin-effect √f scaling
    /// from the design point) — reproduces the Fig. 11 trend.
    pub fn insertion_loss_db(&self, f_hz: f64) -> f64 {
        self.loss_db_per_m * self.trace_length_m * (f_hz / self.design_freq_hz).max(0.0).sqrt()
    }

    /// Return loss |S11| in dB at frequency `f` (negative number; more
    /// negative = better matched) — a matched baseline with a periodic ripple
    /// from the meander discontinuities, reproducing the Fig. 10 shape.
    pub fn s11_db(&self, f_hz: f64) -> f64 {
        let baseline = -22.0;
        let ripple_amp = 5.0;
        // The dominant ripple is the standing wave between the input and
        // far-end discontinuities: period c / (2 L sqrt(eps_eff)) in
        // frequency — a few hundred MHz for the paper's 1.26 ns line, giving
        // the Fig. 10 shape. The meander turns add a faster, weaker ripple.
        let e = self.epsilon_eff().sqrt();
        let phase_full =
            2.0 * std::f64::consts::PI * 2.0 * self.trace_length_m * e * f_hz / SPEED_OF_LIGHT;
        let turn_len = self.trace_length_m / self.n_turns.max(1) as f64;
        let phase_turn = 2.0 * std::f64::consts::PI * 2.0 * turn_len * e * f_hz / SPEED_OF_LIGHT;
        baseline + ripple_amp * phase_full.sin() + 0.2 * ripple_amp * phase_turn.sin()
    }

    /// Converts to the generic [`DelayLine`] model (with a small dispersion
    /// term typical of microstrip).
    pub fn as_delay_line(&self) -> DelayLine {
        DelayLine {
            length_m: self.trace_length_m,
            velocity_factor: self.velocity_factor(),
            loss_db_per_m: self.loss_db_per_m,
            ref_freq_hz: self.design_freq_hz,
            dispersion_per_ghz: -0.002,
        }
    }
}

/// Quasi-static effective permittivity of a 50 Ω microstrip (w/h ≈ 1.5):
/// `(εr + 1)/2 + (εr − 1)/2 · 1/sqrt(1 + 12 h/w)`.
fn effective_permittivity(epsilon_r: f64) -> f64 {
    let w_over_h = 1.5f64;
    (epsilon_r + 1.0) / 2.0 + (epsilon_r - 1.0) / 2.0 / (1.0 + 12.0 / w_over_h).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inches_to_m;

    #[test]
    fn coax_delay_matches_formula() {
        // 1 m of k=0.7 coax: delay = 1 / (0.7 * c) = 4.76 ns.
        let line = DelayLine::coax(1.0, 9.5e9);
        assert!((line.delay() - 4.763e-9).abs() < 1e-11);
    }

    #[test]
    fn paper_beat_frequency_example() {
        // Paper §3.2.1: B = 1 GHz, ΔL = 18 in, k = 0.7, T_chirp 20–200 µs
        // → Δf from ~110 kHz down to ~11 kHz.
        let proto = DelayLine::coax(0.0, 9.5e9);
        let pair = DelayLinePair::from_difference(proto, 0.1, inches_to_m(18.0));
        let f_max = pair.beat_freq(1e9, 20e-6);
        let f_min = pair.beat_freq(1e9, 200e-6);
        assert!((f_max - 108_900.0).abs() < 1500.0, "Δf_max {f_max}");
        assert!((f_min - 10_890.0).abs() < 150.0, "Δf_min {f_min}");
    }

    #[test]
    fn beat_freq_linear_in_inverse_duration() {
        let proto = DelayLine::coax(0.0, 9.5e9);
        let pair = DelayLinePair::from_difference(proto, 0.1, inches_to_m(45.0));
        let f1 = pair.beat_freq(1e9, 50e-6);
        let f2 = pair.beat_freq(1e9, 100e-6);
        assert!((f1 / f2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn beat_freq_scales_with_delta_l() {
        let proto = DelayLine::coax(0.0, 9.5e9);
        let small = DelayLinePair::from_difference(proto, 0.1, inches_to_m(6.0));
        let large = DelayLinePair::from_difference(proto, 0.1, inches_to_m(45.0));
        let ratio = large.beat_freq(1e9, 100e-6) / small.beat_freq(1e9, 100e-6);
        assert!((ratio - 7.5).abs() < 1e-9);
    }

    #[test]
    fn dispersion_shifts_delay() {
        let mut line = DelayLine::coax(1.0, 9.0e9);
        line.dispersion_per_ghz = -0.01;
        let d_low = line.delay_at(9.0e9);
        let d_high = line.delay_at(10.0e9);
        // Slower at higher f (velocity factor decreased) → longer delay.
        assert!(d_high > d_low);
    }

    #[test]
    fn insertion_loss_grows_with_length_and_freq() {
        let short = DelayLine::coax(0.5, 9.5e9);
        let long = DelayLine::coax(2.0, 9.5e9);
        assert!(long.insertion_loss_db(9.5e9) > short.insertion_loss_db(9.5e9));
        assert!(long.insertion_loss_db(24e9) > long.insertion_loss_db(9.5e9));
    }

    #[test]
    fn pair_mean_loss_between_arms() {
        let proto = DelayLine::coax(0.0, 9.5e9);
        let pair = DelayLinePair::from_difference(proto, 0.5, 1.0);
        let loss = pair.mean_insertion_loss_db(9.5e9);
        let lo = pair.short.insertion_loss_db(9.5e9);
        let hi = pair.long.insertion_loss_db(9.5e9);
        assert!(loss > lo && loss < hi);
    }

    #[test]
    #[should_panic(expected = "ΔL")]
    fn pair_rejects_non_positive_delta() {
        DelayLinePair::from_difference(DelayLine::coax(0.0, 9e9), 0.1, 0.0);
    }

    #[test]
    fn meander_paper_design_delay() {
        let m = MeanderLine::paper_9ghz_design();
        assert!((m.delay() - 1.26e-9).abs() < 1e-12, "delay {}", m.delay());
    }

    #[test]
    fn meander_s11_stays_matched() {
        let m = MeanderLine::paper_9ghz_design();
        // Across the 9–10 GHz band S11 must stay below -15 dB (paper Fig. 10
        // shows a matched line with ripple).
        for i in 0..=100 {
            let f = 9.0e9 + i as f64 * 1e7;
            let s11 = m.s11_db(f);
            assert!(s11 < -15.0, "S11 {s11} at {f}");
            assert!(s11 > -30.0);
        }
    }

    #[test]
    fn meander_s11_ripples() {
        // The ripple should produce both rising and falling segments in-band.
        let m = MeanderLine::paper_9ghz_design();
        let v: Vec<f64> = (0..=100)
            .map(|i| m.s11_db(9.0e9 + i as f64 * 1e7))
            .collect();
        let rising = v.windows(2).filter(|w| w[1] > w[0]).count();
        let falling = v.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(rising > 10 && falling > 10);
    }

    #[test]
    fn meander_as_delay_line_consistent() {
        let m = MeanderLine::paper_9ghz_design();
        let dl = m.as_delay_line();
        assert!((dl.delay_at(m.design_freq_hz) - m.delay()).abs() < 1e-13);
    }

    #[test]
    fn effective_permittivity_bounds() {
        // eps_eff must lie between 1 and eps_r.
        for &er in &[2.2, 6.15, 10.2] {
            let ee = effective_permittivity(er);
            assert!(ee > 1.0 && ee < er, "eps_eff {ee} for eps_r {er}");
        }
    }
}
