//! Analog component models for the BiScatter tag and radar front-ends.
//!
//! Each model corresponds to a physical part in the paper's prototype
//! (§4, Fig. 8): the ADRF5144 SPDT switch, ZC2PD-18263-S+ splitters, the
//! ADL6010 envelope detector, the HFSS-designed microstrip meander delay
//! lines, the 2-element Van Atta array, and the MCU's ADC. Models capture
//! the behaviour the system depends on — insertion loss, delay/dispersion,
//! detector law and noise, switching limits, retro-reflective gain,
//! quantization — not full electromagnetic detail.

pub mod adc;
pub mod antenna;
pub mod delay_line;
pub mod envelope_detector;
pub mod rf_switch;
pub mod splitter;
pub mod van_atta;

pub use adc::Adc;
pub use antenna::Antenna;
pub use delay_line::DelayLine;
pub use envelope_detector::EnvelopeDetector;
pub use rf_switch::{RfSwitch, SwitchState};
pub use splitter::Splitter;
pub use van_atta::VanAtta;
