//! ADC model: sampling, quantization, and clipping.
//!
//! The tag's MCU ADC samples the envelope-detector output at kHz–MHz rates
//! (paper §3.2.1: "the output of the envelope detector is connected to the
//! ADC pin of a microcontroller with only a KHz sampling rate"). Quantization
//! adds a noise floor that participates in the symbol-spacing trade-off
//! (`Δf_int`, paper eq. 13).

/// A uniform mid-rise quantizing ADC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adc {
    /// Sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Resolution in bits.
    pub bits: u32,
    /// Full-scale input range: inputs are clipped to `[-full_scale, +full_scale]`.
    pub full_scale: f64,
}

impl Adc {
    /// A typical low-power MCU ADC: 12-bit, 1 MHz.
    pub fn mcu_12bit_1mhz() -> Self {
        Adc {
            sample_rate_hz: 1e6,
            bits: 12,
            full_scale: 1.0,
        }
    }

    /// Number of quantization levels.
    pub fn levels(&self) -> u64 {
        1u64 << self.bits
    }

    /// Least-significant-bit step size.
    pub fn lsb(&self) -> f64 {
        2.0 * self.full_scale / self.levels() as f64
    }

    /// Quantizes one sample (clip + round to the nearest level).
    pub fn quantize(&self, x: f64) -> f64 {
        let clipped = x.clamp(-self.full_scale, self.full_scale);
        let lsb = self.lsb();
        let code = (clipped / lsb).round();
        let max_code = (self.levels() / 2) as f64 - 1.0;
        let code = code.clamp(-(max_code + 1.0), max_code);
        code * lsb
    }

    /// Quantizes a buffer.
    pub fn quantize_block(&self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| self.quantize(v)).collect()
    }

    /// Theoretical quantization-limited SNR for a full-scale sinusoid:
    /// `6.02 * bits + 1.76` dB.
    pub fn ideal_snr_db(&self) -> f64 {
        6.02 * self.bits as f64 + 1.76
    }

    /// Nyquist frequency.
    pub fn nyquist_hz(&self) -> f64 {
        self.sample_rate_hz / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biscatter_dsp::stats::rms;

    #[test]
    fn lsb_and_levels() {
        let adc = Adc {
            sample_rate_hz: 1e6,
            bits: 8,
            full_scale: 1.0,
        };
        assert_eq!(adc.levels(), 256);
        assert!((adc.lsb() - 2.0 / 256.0).abs() < 1e-15);
    }

    #[test]
    fn quantize_is_idempotent() {
        let adc = Adc::mcu_12bit_1mhz();
        for &x in &[0.1234, -0.987, 0.0, 0.5] {
            let q = adc.quantize(x);
            assert_eq!(adc.quantize(q), q);
        }
    }

    #[test]
    fn quantize_clips() {
        let adc = Adc::mcu_12bit_1mhz();
        assert!(adc.quantize(10.0) <= adc.full_scale);
        assert!(adc.quantize(-10.0) >= -adc.full_scale);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let adc = Adc {
            sample_rate_hz: 1e6,
            bits: 10,
            full_scale: 1.0,
        };
        for i in 0..1000 {
            let x = -0.999 + 0.002 * i as f64 * 0.999;
            let x = x.clamp(-0.999, 0.999);
            let err = (adc.quantize(x) - x).abs();
            assert!(err <= adc.lsb() / 2.0 + 1e-12, "err {err} at {x}");
        }
    }

    #[test]
    fn measured_snr_near_ideal() {
        // Quantize a full-scale sine and compare SNR against 6.02 B + 1.76.
        let adc = Adc {
            sample_rate_hz: 1e6,
            bits: 10,
            full_scale: 1.0,
        };
        let n = 100_000;
        let sig: Vec<f64> = (0..n)
            .map(|i| 0.99 * (std::f64::consts::TAU * 0.013 * i as f64).sin())
            .collect();
        let q = adc.quantize_block(&sig);
        let err: Vec<f64> = sig.iter().zip(&q).map(|(a, b)| a - b).collect();
        let snr_db = 20.0 * (rms(&sig) / rms(&err)).log10();
        let ideal = adc.ideal_snr_db();
        assert!(
            (snr_db - ideal).abs() < 3.0,
            "measured {snr_db} vs ideal {ideal}"
        );
    }

    #[test]
    fn nyquist() {
        assert_eq!(Adc::mcu_12bit_1mhz().nyquist_hz(), 500e3);
    }
}
