//! Simple antenna model: boresight gain with a raised-cosine pattern.

/// An antenna with gain and a parametric beamwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Antenna {
    /// Boresight gain, dBi.
    pub gain_dbi: f64,
    /// Half-power (−3 dB) full beamwidth, radians.
    pub beamwidth_rad: f64,
}

impl Antenna {
    /// An isotropic radiator.
    pub fn isotropic() -> Self {
        Antenna {
            gain_dbi: 0.0,
            beamwidth_rad: std::f64::consts::TAU,
        }
    }

    /// A patch antenna typical of the paper's tags (~5 dBi, ~75°).
    pub fn patch() -> Self {
        Antenna {
            gain_dbi: 5.0,
            beamwidth_rad: 75f64.to_radians(),
        }
    }

    /// A horn typical of radar front-ends (~15 dBi, ~30°).
    pub fn horn() -> Self {
        Antenna {
            gain_dbi: 15.0,
            beamwidth_rad: 30f64.to_radians(),
        }
    }

    /// Gain in dBi at angle `theta` off boresight, using a Gaussian-beam
    /// rolloff calibrated so that the gain is 3 dB down at half the
    /// beamwidth.
    pub fn gain_at(&self, theta_rad: f64) -> f64 {
        let half = self.beamwidth_rad / 2.0;
        if half <= 0.0 {
            return self.gain_dbi;
        }
        let x = theta_rad / half;
        self.gain_dbi - 3.0 * x * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boresight_gain() {
        assert_eq!(Antenna::patch().gain_at(0.0), 5.0);
    }

    #[test]
    fn three_db_at_half_beamwidth() {
        let a = Antenna::horn();
        let g = a.gain_at(a.beamwidth_rad / 2.0);
        assert!((a.gain_dbi - g - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_monotone_off_boresight() {
        let a = Antenna::patch();
        let mut last = f64::INFINITY;
        for i in 0..10 {
            let g = a.gain_at(i as f64 * 0.1);
            assert!(g <= last);
            last = g;
        }
    }

    #[test]
    fn isotropic_flat() {
        let a = Antenna::isotropic();
        assert!((a.gain_at(1.5) - 0.0).abs() < 0.7);
    }
}
