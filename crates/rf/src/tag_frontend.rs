//! The tag's differential decoder front-end (paper §3.2.1, Fig. 4).
//!
//! Signal path: antenna → splitter → {short delay line, long delay line} →
//! combiner → square-law envelope detector → ADC. For an incident FMCW chirp
//! the two arms differ by delay `ΔT`, so the detector output contains a beat
//! tone at `Δf = α ΔT` whose phase is
//!
//! `Δφ(t) = φ(t) − φ(t − ΔT) = 2π (f0 ΔT + α ΔT t − α ΔT²/2)`.
//!
//! Two simulation paths are provided (DESIGN.md §5):
//!
//! * **analytic envelope** ([`TagFrontEnd::capture_train`]) — evaluates the
//!   exact phase difference per ADC sample, adds calibrated noise and ADC
//!   quantization. This is what all BER experiments run on (kHz rate → fast).
//! * **scaled passband** ([`TagFrontEnd::capture_passband`]) — synthesizes
//!   the actual RF waveform at a frequency-scaled carrier and pushes it
//!   through the real component chain (sum of arms → square law → LPF).
//!   Used in tests to prove the analytic model exact.

use crate::chirp::Chirp;
use crate::components::delay_line::DelayLinePair;
use crate::components::envelope_detector::EnvelopeDetector;
use crate::components::{Adc, Splitter};
use crate::frame::ChirpTrain;
use biscatter_dsp::signal::NoiseSource;
use biscatter_dsp::TAU;

/// The assembled tag analog front-end.
#[derive(Debug, Clone)]
pub struct TagFrontEnd {
    /// The two delay lines.
    pub pair: DelayLinePair,
    /// Input splitter (a second identical part recombines; both contribute
    /// loss to the link budget but cancel out of the normalized envelope).
    pub splitter: Splitter,
    /// Envelope detector.
    pub detector: EnvelopeDetector,
    /// Sampling ADC.
    pub adc: Adc,
    /// Per-chirp beat start-phase randomization, in turns (0 = perfectly
    /// repeatable chirp start frequency, 1 = fully random phase). The beat
    /// tone's phase is `f0·ΔT` (tens of carrier cycles across the delay
    /// difference), so even small PLL start-frequency jitter — a few MHz on
    /// a 9 GHz synthesizer — randomizes it completely between chirps. Real
    /// synthesizers (LMX2492 class) sit at the "fully random" end.
    pub start_phase_jitter: f64,
}

impl TagFrontEnd {
    /// A front-end matching the paper's wired-validation configuration:
    /// coax lines with the given `ΔL` (metres), ADL6010-class detector,
    /// 12-bit / 1 MHz MCU ADC.
    pub fn coax_prototype(delta_l_m: f64, ref_freq_hz: f64) -> Self {
        use crate::components::delay_line::DelayLine;
        TagFrontEnd {
            pair: DelayLinePair::from_difference(
                DelayLine::coax(0.0, ref_freq_hz),
                0.05,
                delta_l_m,
            ),
            splitter: Splitter::zc2pd(),
            detector: EnvelopeDetector::adl6010(),
            adc: Adc::mcu_12bit_1mhz(),
            start_phase_jitter: 1.0,
        }
    }

    /// Differential delay `ΔT` at the chirp's instantaneous frequency
    /// (captures delay-line dispersion across the sweep).
    pub fn delta_t_at(&self, f_hz: f64) -> f64 {
        self.pair.delta_t_at(f_hz)
    }

    /// Predicted beat frequency for `chirp` at its center frequency
    /// (paper eq. 11 with the dispersive `ΔT`).
    pub fn beat_freq(&self, chirp: &Chirp) -> f64 {
        chirp.slope() * self.delta_t_at(chirp.center_freq())
    }

    /// Noise-free analytic envelope sample at time `t` into the sweep of
    /// `chirp` (normalized arm amplitude 1), with an extra beat phase
    /// `phase0` (start-frequency jitter). Returns `None` outside the sweep.
    fn envelope_at(&self, chirp: &Chirp, t: f64, phase0: f64) -> Option<f64> {
        if t < 0.0 || t > chirp.duration {
            return None;
        }
        // Dispersion: evaluate ΔT at the instantaneous sweep frequency.
        let f_inst = chirp.instantaneous_freq(t);
        let dt = self.delta_t_at(f_inst);
        let alpha = chirp.slope();
        let delta_phi = TAU * (chirp.f0 * dt + alpha * dt * t - 0.5 * alpha * dt * dt) + phase0;
        Some(self.detector.analytic_output(1.0, delta_phi))
    }

    /// Captures the ADC stream for a full chirp train at the given envelope
    /// SNR.
    ///
    /// * The beat tone's AC amplitude is 1 (normalized); noise sigma is set
    ///   so the tone-power to noise-power ratio equals `snr_db`.
    /// * `time_offset_s` shifts the ADC clock relative to the train start —
    ///   use it to exercise the tag's synchronization (the tag does *not*
    ///   know the slot boundaries a priori).
    /// * During inter-chirp gaps the detector sees only noise.
    ///
    /// Returns the quantized ADC samples covering the entire train duration.
    pub fn capture_train(
        &self,
        train: &ChirpTrain,
        snr_db: f64,
        time_offset_s: f64,
        noise: &mut NoiseSource,
    ) -> Vec<f64> {
        let fs = self.adc.sample_rate_hz;
        let total = train.duration();
        let n = (total * fs).floor() as usize;
        // AC beat amplitude is a² = 1; rms = 1/sqrt(2).
        let sigma = (1.0 / 2f64.sqrt()) / 10f64.powf(snr_db / 20.0);

        let slots: Vec<(f64, &crate::frame::ChirpSlot)> = train.iter_timed().collect();
        // One beat start-phase draw per chirp (PLL start-frequency jitter).
        let phases: Vec<f64> = slots
            .iter()
            .map(|_| noise.uniform() * TAU * self.start_phase_jitter)
            .collect();
        let mut out = Vec::with_capacity(n);
        let mut slot_idx = 0usize;
        for i in 0..n {
            let t = i as f64 / fs + time_offset_s;
            // Advance to the slot containing t (monotone sweep).
            while slot_idx + 1 < slots.len() && t >= slots[slot_idx + 1].0 {
                slot_idx += 1;
            }
            let (t0, slot) = slots[slot_idx];
            let env = self
                .envelope_at(&slot.chirp, t - t0, phases[slot_idx])
                .unwrap_or(0.0);
            let sample = env + noise.gaussian_scaled(sigma);
            out.push(self.adc.quantize(sample / 2.2 * self.adc.full_scale) * 2.2);
        }
        out
    }

    /// Scaled-passband validation path: synthesizes the real RF waveform of
    /// `chirp` at RF sample rate `fs_rf`, applies the two delayed arms
    /// (phase-exact delays), sums, and runs the square-law detector.
    ///
    /// Intended for *scaled* carriers (e.g. `f0` of a few hundred kHz) where
    /// `fs_rf` is tractable; the physics is scale-invariant in `α ΔT`.
    /// Returns the detector output at `fs_rf` (decimate as needed).
    pub fn capture_passband(&self, chirp: &Chirp, fs_rf: f64) -> Vec<f64> {
        let n = (chirp.duration * fs_rf).round() as usize;
        let dt_short = self.pair.short.delay_at(chirp.center_freq());
        let dt_long = self.pair.long.delay_at(chirp.center_freq());
        let rf: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs_rf;
                let s1 = if t >= dt_short {
                    chirp.phase(t - dt_short).cos()
                } else {
                    0.0
                };
                let s2 = if t >= dt_long {
                    chirp.phase(t - dt_long).cos()
                } else {
                    0.0
                };
                s1 + s2
            })
            .collect();
        self.detector.detect(&rf, fs_rf)
    }

    /// Total front-end insertion loss at frequency `f` (two splitter
    /// passes + mean delay-line loss), dB — feeds the downlink budget.
    pub fn insertion_loss_db(&self, f_hz: f64) -> f64 {
        self.splitter
            .port_loss_db(crate::components::splitter::SplitPort::A)
            + self.splitter.combine_loss_db()
            + self.pair.mean_insertion_loss_db(f_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inches_to_m;
    use biscatter_dsp::spectrum::{find_peak, periodogram};
    use biscatter_dsp::window::WindowKind;

    fn front_end(delta_l_in: f64) -> TagFrontEnd {
        TagFrontEnd::coax_prototype(inches_to_m(delta_l_in), 9.5e9)
    }

    fn peak_freq(samples: &[f64], fs: f64) -> f64 {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let ac: Vec<f64> = samples.iter().map(|v| v - mean).collect();
        let (freqs, power) = periodogram(&ac, fs, WindowKind::Hann);
        find_peak(&power).unwrap().refined_bin * freqs[1]
    }

    #[test]
    fn beat_freq_matches_eq11() {
        // B = 1 GHz, ΔL = 45 in, k = 0.7: Δf = B ΔL/(T k c).
        let fe = front_end(45.0);
        let chirp = Chirp::new(9e9, 1e9, 100e-6);
        let expected = 1e9 * inches_to_m(45.0) / (100e-6 * 0.7 * 299_792_458.0);
        let got = fe.beat_freq(&chirp);
        assert!(
            (got - expected).abs() / expected < 1e-9,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn capture_shows_beat_tone() {
        let fe = front_end(45.0);
        let chirps = vec![Chirp::new(9e9, 1e9, 96e-6)];
        let train = ChirpTrain::with_fixed_period(&chirps, 120e-6).unwrap();
        let mut noise = NoiseSource::new(1);
        let samples = fe.capture_train(&train, 40.0, 0.0, &mut noise);
        assert_eq!(samples.len(), 120);
        // Only analyze the sweep portion (96 samples).
        let f_est = peak_freq(&samples[..96], fe.adc.sample_rate_hz);
        let f_expected = fe.beat_freq(&train.slots()[0].chirp);
        assert!(
            (f_est - f_expected).abs() < 2.5e3,
            "est {f_est}, expected {f_expected}"
        );
    }

    #[test]
    fn gap_contains_only_noise() {
        let fe = front_end(45.0);
        let chirps = vec![Chirp::new(9e9, 1e9, 40e-6)];
        let train = ChirpTrain::with_fixed_period(&chirps, 120e-6).unwrap();
        let mut noise = NoiseSource::new(2);
        let samples = fe.capture_train(&train, 30.0, 0.0, &mut noise);
        // Samples 40.. are in the gap: their power should be far below the
        // sweep portion.
        let p = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        assert!(p(&samples[..40]) > 20.0 * p(&samples[50..]));
    }

    #[test]
    fn passband_validates_analytic_beat() {
        // Scaled-down experiment: the analytic model and the full passband
        // chain must agree on the beat frequency. Scale: f0 = 100 kHz,
        // B = 400 kHz, T = 50 ms, ΔT exaggerated via a long "cable" so the
        // beat lands at a measurable frequency.
        use crate::components::delay_line::DelayLine;
        let mut line = DelayLine::coax(0.0, 100e3);
        line.loss_db_per_m = 0.0;
        let fe = TagFrontEnd {
            pair: DelayLinePair::from_difference(line, 10.0, 30_000.0), // ΔT = 143 µs
            splitter: Splitter::ideal(),
            detector: EnvelopeDetector {
                video_bandwidth_hz: 50e3,
                noise_floor_dbm: -70.0,
                responsivity: 1.0,
            },
            adc: Adc::mcu_12bit_1mhz(),
            start_phase_jitter: 0.0,
        };
        let chirp = Chirp::new(100e3, 400e3, 50e-3);
        let fs_rf = 4e6;
        let analytic_f = fe.beat_freq(&chirp); // α ΔT = 8e6 * 1.43e-4 ≈ 1.14 kHz
        let detected = fe.capture_passband(&chirp, fs_rf);
        // Skip the detector transient, analyze the steady portion.
        let skip = (0.2 * detected.len() as f64) as usize;
        let f_est = peak_freq(&detected[skip..], fs_rf);
        assert!(
            (f_est - analytic_f).abs() / analytic_f < 0.05,
            "passband {f_est} vs analytic {analytic_f}"
        );
    }

    #[test]
    fn snr_controls_noise_level() {
        let fe = front_end(45.0);
        let chirps = vec![Chirp::new(9e9, 1e9, 96e-6); 8];
        let train = ChirpTrain::with_fixed_period(&chirps, 120e-6).unwrap();
        let mut n1 = NoiseSource::new(3);
        let mut n2 = NoiseSource::new(3);
        let clean = fe.capture_train(&train, 60.0, 0.0, &mut n1);
        let noisy = fe.capture_train(&train, 0.0, 0.0, &mut n2);
        // Compare variance of the gap samples (pure noise region).
        let gap = |v: &[f64]| {
            let mut g = Vec::new();
            for slot in 0..8 {
                g.extend_from_slice(&v[slot * 120 + 100..slot * 120 + 119]);
            }
            let m = g.iter().sum::<f64>() / g.len() as f64;
            g.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / g.len() as f64
        };
        assert!(gap(&noisy) > 100.0 * gap(&clean).max(1e-12));
    }

    #[test]
    fn time_offset_shifts_pattern() {
        let fe = front_end(45.0);
        let chirps = vec![Chirp::new(9e9, 1e9, 60e-6)];
        let train = ChirpTrain::with_fixed_period(&chirps, 120e-6).unwrap();
        let mut n1 = NoiseSource::new(4);
        let mut n2 = NoiseSource::new(4);
        let aligned = fe.capture_train(&train, 60.0, 0.0, &mut n1);
        let shifted = fe.capture_train(&train, 60.0, 30e-6, &mut n2);
        // With a 30 µs offset the sweep ends 30 samples earlier.
        let p = |v: &[f64], lo: usize, hi: usize| v[lo..hi].iter().map(|x| x * x).sum::<f64>();
        assert!(p(&aligned, 40, 60) > 10.0 * p(&shifted, 40, 60));
    }

    #[test]
    fn insertion_loss_reasonable() {
        let fe = front_end(18.0);
        let loss = fe.insertion_loss_db(9.5e9);
        // Two splitter passes (~7.2 dB) + short cable loss: order 8–10 dB.
        assert!(loss > 6.0 && loss < 12.0, "loss {loss}");
    }

    #[test]
    fn dispersion_changes_beat_slightly() {
        // With dispersion the beat frequency depends on where in the band
        // the sweep sits; without it, only on the slope. Reference the lines
        // at 9.0 GHz so a 9.5 GHz-centered sweep sees a velocity shift.
        let mut fe = TagFrontEnd::coax_prototype(inches_to_m(45.0), 9.0e9);
        fe.pair.short.dispersion_per_ghz = -0.01;
        fe.pair.long.dispersion_per_ghz = -0.01;
        let low = Chirp::new(9.0e9, 1e9, 100e-6); // centered at 9.5 GHz
        let high = Chirp::new(10.0e9, 1e9, 100e-6); // centered at 10.5 GHz
        let f_low = fe.beat_freq(&low);
        let f_high = fe.beat_freq(&high);
        let rel = (f_high - f_low).abs() / f_low;
        assert!(rel > 1e-3 && rel < 0.05, "relative shift {rel}");
        // Without dispersion the two agree exactly.
        let ideal = TagFrontEnd::coax_prototype(inches_to_m(45.0), 9.0e9);
        assert!((ideal.beat_freq(&low) - ideal.beat_freq(&high)).abs() < 1e-9);
    }
}
