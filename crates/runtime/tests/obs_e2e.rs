//! End-to-end telemetry audit for the streaming pipeline.
//!
//! Runs a real multi-frame stream with tracing enabled and an intra-frame
//! compute pool, then drains the trace rings and the metric registry and
//! checks the whole observability story at once:
//!
//! - every completed frame id shows spans from the source, all four DSP
//!   stages (dechirp / align / doppler / detect), and at least one
//!   compute-pool worker — i.e. the frame id propagated from the source
//!   thread through the stage workers into the pool's fork-join regions;
//! - the plan cache and the frame arena report non-zero hit rates, proving
//!   the hot-path instrumentation observed the reuse the DESIGN doc claims.
//!
//! This file keeps exactly one `#[test]`: the trace rings and the registry
//! are process-global, and `TraceCollector::drain` resets the rings, so a
//! second test in the same binary would race this one.

use std::collections::{BTreeMap, BTreeSet};

use biscatter_compute::ComputePool;
use biscatter_obs::trace::{self, TraceCollector};
use biscatter_runtime::pipeline::{run_streaming, Cell, RuntimeConfig, StageWorkers};
use biscatter_runtime::queue::Backpressure;
use biscatter_runtime::source::{cold_start_jobs, streaming_system, WorkloadSpec};

const N_FRAMES: usize = 16;
const N_COLD: usize = 4;

#[test]
fn every_frame_is_traced_end_to_end() {
    trace::set_enabled(true);
    let sys = streaming_system();
    let spec = WorkloadSpec::four_by_eight(N_FRAMES, 42);
    let cfg = RuntimeConfig {
        queue_capacity: 4,
        policy: Backpressure::Block,
        workers: StageWorkers::uniform(1),
        intra_frame_threads: 2,
        ..RuntimeConfig::default()
    };
    let report = run_streaming(&sys, spec.jobs(&sys), &cfg);
    assert_eq!(report.outcomes.len(), N_FRAMES, "stream must be lossless");

    // Cold-start frames through the same cell machinery (inline path), so
    // the acquisition stage's spans and metrics land in the same drain.
    // Frame ids continue past the streamed ones to stay disjoint.
    let cell = Cell::standalone(sys.clone(), cfg);
    let pool = ComputePool::new(2);
    let mut cold = cold_start_jobs(&sys, N_COLD, 7);
    let mut cold_ids = Vec::new();
    for job in cold.iter_mut() {
        job.id += N_FRAMES as u64;
        cold_ids.push(job.id);
        let out = cell.process_cold_start(&pool, job);
        assert!(
            out.acquisition.is_some(),
            "cold-start frame {} not acquired",
            job.id
        );
    }

    // Gather, per frame id, the set of span names recorded anywhere.
    let collector = TraceCollector::drain();
    let mut by_frame: BTreeMap<u64, BTreeSet<&'static str>> = BTreeMap::new();
    let mut threads_with_spans = BTreeSet::new();
    for (tid, span) in collector.iter_spans() {
        threads_with_spans.insert(tid);
        if span.frame_id != trace::NO_FRAME {
            by_frame.entry(span.frame_id).or_default().insert(span.name);
        }
    }
    for t in &collector.threads {
        assert_eq!(t.dropped, 0, "thread {} overflowed its ring", t.thread);
    }
    assert!(
        threads_with_spans.len() >= 3,
        "expected spans from several threads (source, stage workers, pool), got {}",
        threads_with_spans.len()
    );

    // Every completed frame was traced at the source, through each DSP
    // stage, and inside at least one compute-pool worker.
    let required = [
        "runtime.source",
        "isac.dechirp",
        "isac.align",
        "isac.doppler",
        "isac.detect",
        "compute.worker",
        "runtime.sink",
    ];
    for (id, _) in &report.outcomes {
        let names = by_frame
            .get(id)
            .unwrap_or_else(|| panic!("frame {id} recorded no spans at all"));
        for want in required {
            assert!(
                names.contains(want),
                "frame {id} is missing a `{want}` span (has {names:?})"
            );
        }
    }

    // The registry saw the hot-path reuse: FFT plans and arena leases both
    // report hits after the first few frames.
    let reg = &report.metrics.registry;
    let counter = |name: &str| {
        reg.counter(name)
            .unwrap_or_else(|| panic!("registry is missing counter `{name}`"))
    };
    assert!(counter("dsp.plan_cache.hits") > 0, "plan cache never hit");
    assert!(
        counter("arena.isac.if_slabs.lease_hits") > 0,
        "IF-slab arena never recycled a buffer"
    );
    assert!(
        counter("arena.isac.aligned.lease_hits") > 0,
        "aligned-pair arena never recycled a buffer"
    );
    assert!(
        counter("compute.fork_join.calls") > 0,
        "intra-frame pool never forked"
    );

    // Stage queues published their congestion gauges.
    for stage in [
        "synthesize",
        "dechirp",
        "align",
        "doppler",
        "detect",
        "sink",
    ] {
        let name = format!("runtime.queue.{stage}.high_water");
        let hw = reg
            .gauge(&name)
            .unwrap_or_else(|| panic!("registry is missing gauge `{name}`"));
        assert!(hw >= 1.0, "queue {stage} high-water gauge never moved");
    }

    // Every cold-start frame shows the acquisition stage's spans — the
    // stage wrapper, the correlator bank, and its fan-out/scan phases — and
    // then the aligned-frame spans, since every dwell here carries a tag.
    let acquire_spans = [
        "isac.acquire",
        "acquire.bank",
        "acquire.correlate",
        "acquire.accumulate",
        "acquire.scan",
        "isac.dechirp",
        "isac.detect",
    ];
    for id in &cold_ids {
        let names = by_frame
            .get(id)
            .unwrap_or_else(|| panic!("cold-start frame {id} recorded no spans"));
        for want in acquire_spans {
            assert!(
                names.contains(want),
                "cold-start frame {id} is missing a `{want}` span (has {names:?})"
            );
        }
    }

    // The cold-start frames ran after `run_streaming` snapshotted the
    // registry, so their counters need a fresh snapshot. The bank evaluated
    // every hypothesis once per frame, folded its windows, and — after the
    // first frame built the templates — served the rest from cache.
    let snap = biscatter_obs::registry().snapshot();
    let acq_counter = |name: &str| {
        snap.counter(name)
            .unwrap_or_else(|| panic!("registry is missing counter `{name}`"))
    };
    let hyps = acq_counter("acquire.hypotheses.evaluated");
    assert!(hyps >= N_COLD as u64, "hypotheses evaluated: {hyps}");
    assert!(
        acq_counter("acquire.windows.accumulated") > hyps,
        "windows accumulated should exceed hypotheses evaluated"
    );
    assert!(
        acq_counter("acquire.templates.cache_misses") >= 1,
        "the first cold-start frame must build the template cache"
    );
    assert!(
        acq_counter("acquire.templates.cache_hits") >= 1,
        "later cold-start frames never hit the template cache"
    );
    assert_eq!(
        acq_counter("acquire.tags.acquired"),
        N_COLD as u64,
        "every cold-start dwell here carries a tag"
    );
    let bank_size = snap
        .gauge("acquire.bank.hypotheses")
        .expect("registry is missing gauge `acquire.bank.hypotheses`");
    assert!(bank_size >= 1.0, "bank-size gauge never set");
    let pslr = snap
        .histogram("acquire.pslr_mdb")
        .expect("registry is missing histogram `acquire.pslr_mdb`");
    assert_eq!(
        pslr.count(),
        N_COLD as u64,
        "one PSLR sample per cold-start dwell"
    );
}
