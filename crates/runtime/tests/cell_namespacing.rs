//! Per-cell metric namespacing regression test (ISSUE 6 satellite).
//!
//! Two cells running concurrently in one process must report *disjoint*
//! metric scopes — every pool gauge, queue gauge, and stage histogram a
//! cell touches lives under its own `cell<i>.` prefix — and each scope must
//! report that cell's numbers, not a sum mangled together in shared names.
//!
//! The cell ids here (31, 47) are deliberately unlike anything other tests
//! use: the registry is process-global and cumulative, so the prefixes must
//! be unique to this test binary for the exact-count assertions to hold.

use std::collections::BTreeSet;
use std::thread;

use biscatter_runtime::source::{streaming_system, WorkloadSpec};
use biscatter_runtime::{Cell, RuntimeConfig};

#[test]
fn concurrent_cells_report_disjoint_correct_gauges() {
    let sys = streaming_system();
    let cfg = RuntimeConfig {
        queue_capacity: 4,
        ..RuntimeConfig::default()
    };
    // Different frame counts so a cross-wired counter cannot pass by luck.
    let spec_a = WorkloadSpec {
        n_radars: 1,
        tags_per_radar: 2,
        n_frames: 5,
        base_seed: 7,
    };
    let spec_b = WorkloadSpec {
        n_radars: 1,
        tags_per_radar: 2,
        n_frames: 9,
        base_seed: 8,
    };

    let cell_a = Cell::new(31, sys.clone(), cfg);
    let cell_b = Cell::new(47, sys.clone(), cfg);
    let (report_a, report_b) = thread::scope(|s| {
        let a = s.spawn(|| cell_a.run_streaming(spec_a.jobs(&sys)));
        let b = s.spawn(|| cell_b.run_streaming(spec_b.jobs(&sys)));
        (a.join().unwrap(), b.join().unwrap())
    });
    assert_eq!(report_a.outcomes.len(), spec_a.n_frames);
    assert_eq!(report_b.outcomes.len(), spec_b.n_frames);

    let snap = biscatter_obs::registry().snapshot();
    let view_a = snap.filter_prefix("cell31.").strip_prefix("cell31.");
    let view_b = snap.filter_prefix("cell47.").strip_prefix("cell47.");

    // Each cell's scope carries that cell's numbers.
    assert_eq!(view_a.counter("runtime.frames"), Some(5));
    assert_eq!(view_b.counter("runtime.frames"), Some(9));
    for view in [&view_a, &view_b] {
        for stage in [
            "synthesize",
            "dechirp",
            "align",
            "doppler",
            "detect",
            "sink",
        ] {
            let depth = view.gauge(&format!("runtime.queue.{stage}.depth"));
            assert_eq!(depth, Some(0.0), "queue drained at shutdown: {stage}");
            let hiwat = view.gauge(&format!("runtime.queue.{stage}.high_water"));
            assert!(
                hiwat.is_some_and(|v| v >= 1.0),
                "queue {stage} was never used"
            );
        }
        assert!(
            view.counter("arena.isac.if_slabs.lease_hits").is_some(),
            "arena pools must live inside the cell scope"
        );
        assert!(
            view.histogram("runtime.frame.ns")
                .is_some_and(|h| h.count() > 0),
            "per-cell frame latency histogram missing"
        );
    }

    // And the scopes are disjoint views of the same schema: identical metric
    // names after stripping, no name leaking into the other cell's prefix.
    let names = |v: &biscatter_obs::metrics::RegistrySnapshot| -> BTreeSet<String> {
        v.counters
            .iter()
            .map(|(n, _)| n.clone())
            .chain(v.gauges.iter().map(|(n, _)| n.clone()))
            .chain(v.histograms.iter().map(|(n, _)| n.clone()))
            .collect()
    };
    assert_eq!(names(&view_a), names(&view_b));
    assert!(names(&view_a).iter().all(|n| !n.starts_with("cell")));

    // The legacy shared scope is untouched by prefixed cells: no bare
    // `runtime.frames` counted these cells' frames.
    if let Some(shared_frames) = snap.counter("runtime.frames") {
        let total: u64 = (5 + 9) as u64;
        assert!(
            shared_frames < total,
            "prefixed cells must not also bump the shared runtime.frames"
        );
    }
}
