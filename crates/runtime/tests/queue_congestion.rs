//! Congestion accounting for [`BoundedQueue`] under concurrent producers.
//!
//! The drop-oldest policy promises *exact* accounting: with no consumer,
//! `offered = retained + evicted` must hold to the item, the retained set is
//! exactly the queue's capacity, and the high-water mark never exceeds
//! capacity. This holds even when many producers race, because eviction and
//! insertion happen under the same lock.

use std::sync::Arc;

use biscatter_runtime::queue::{Backpressure, BoundedQueue};

const CAPACITY: usize = 8;
const PRODUCERS: u64 = 4;
const PER_PRODUCER: u64 = 250;

#[test]
fn drop_oldest_accounts_exactly_under_concurrent_producers() {
    let q = Arc::new(BoundedQueue::<u64>::new(CAPACITY, Backpressure::DropOldest));

    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    assert!(q.push(p * PER_PRODUCER + i), "queue must stay open");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let offered = PRODUCERS * PER_PRODUCER;
    assert_eq!(q.depth(), CAPACITY, "queue must be full after the flood");
    assert_eq!(
        q.drops(),
        offered - CAPACITY as u64,
        "every eviction must be counted, exactly once"
    );
    assert_eq!(
        q.high_water(),
        CAPACITY,
        "high-water must saturate at capacity, never exceed it"
    );

    // Drain: exactly `CAPACITY` distinct survivors remain, and draining
    // changes no congestion counter.
    q.close();
    let mut survivors = std::collections::BTreeSet::new();
    while let Some(v) = q.pop() {
        assert!(survivors.insert(v), "queue yielded a duplicate item");
    }
    assert_eq!(survivors.len(), CAPACITY);
    assert_eq!(q.drops(), offered - CAPACITY as u64);
    assert_eq!(q.high_water(), CAPACITY);
}

/// Blocking queues never drop: with a consumer draining, all offered items
/// arrive and the drop counter stays zero even when producers outpace the
/// consumer and repeatedly block on the full queue.
#[test]
fn blocking_policy_never_drops_under_pressure() {
    let q = Arc::new(BoundedQueue::<u64>::new(2, Backpressure::Block));
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.push(p * PER_PRODUCER + i);
                }
            })
        })
        .collect();
    let consumer = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || {
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    };
    for h in producers {
        h.join().unwrap();
    }
    q.close();
    assert_eq!(consumer.join().unwrap(), PRODUCERS * PER_PRODUCER);
    assert_eq!(q.drops(), 0, "blocking backpressure must be lossless");
    assert!(q.high_water() <= 2);
}
