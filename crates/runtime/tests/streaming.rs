//! Integration tests for the streaming runtime.
//!
//! Uses the reduced-cost `streaming_system()` (32-chirp frames, 256-point
//! range processing) so multi-hundred-frame streams stay affordable in debug
//! builds.

use biscatter_runtime::pipeline::{run_serial, run_streaming, RuntimeConfig, StageWorkers};
use biscatter_runtime::queue::Backpressure;
use biscatter_runtime::source::{multi_tag_jobs, streaming_system, WorkloadSpec};

/// The ISSUE acceptance workload: a seeded 4-radar × 8-tag stream of 200+
/// frames through bounded queues must lose nothing under blocking
/// backpressure, and the metrics must account for every frame at every
/// stage.
#[test]
fn blocking_stream_of_200_frames_is_lossless() {
    let sys = streaming_system();
    let spec = WorkloadSpec::four_by_eight(200, 42);
    let cfg = RuntimeConfig {
        queue_capacity: 4,
        policy: Backpressure::Block,
        workers: StageWorkers::auto(),
        ..RuntimeConfig::default()
    };
    let report = run_streaming(&sys, spec.jobs(&sys), &cfg);

    assert_eq!(report.outcomes.len(), 200, "no frame may be lost");
    assert_eq!(report.metrics.frames_completed, 200);
    assert_eq!(report.metrics.total_drops, 0);
    // Sink restored frame order.
    for (i, (id, _)) in report.outcomes.iter().enumerate() {
        assert_eq!(*id, i as u64);
    }
    // Every stage saw every frame exactly once, and bounded queues stayed
    // bounded.
    for s in &report.metrics.stages {
        assert_eq!(s.frames_in, 200, "stage {} frames_in", s.name);
        assert_eq!(s.frames_out, 200, "stage {} frames_out", s.name);
        assert!(
            s.queue_high_water <= cfg.queue_capacity,
            "stage {} queue exceeded capacity",
            s.name
        );
        assert_eq!(s.latency.count(), 200);
    }
    assert_eq!(report.metrics.end_to_end.count(), 200);

    // The pipeline does real ISAC work: most frames decode and localize.
    let decoded = report
        .outcomes
        .iter()
        .filter(|(_, o)| o.downlink.parsed)
        .count();
    let located = report
        .outcomes
        .iter()
        .filter(|(_, o)| o.location.is_some())
        .count();
    assert!(decoded >= 180, "only {decoded}/200 downlinks decoded");
    assert!(located >= 180, "only {located}/200 tags located");
}

/// Streamed outcomes must be bit-identical to the one-shot
/// `core::isac::run_isac_frame` path on the same seeds, independent of
/// worker counts and queue sizing.
#[test]
fn streaming_matches_one_shot_path() {
    let sys = streaming_system();
    let spec = WorkloadSpec::four_by_eight(24, 7);
    let jobs = spec.jobs(&sys);
    let serial = run_serial(&sys, &jobs);

    for (workers, capacity) in [(StageWorkers::uniform(1), 2), (StageWorkers::uniform(2), 5)] {
        let cfg = RuntimeConfig {
            queue_capacity: capacity,
            policy: Backpressure::Block,
            workers,
            ..RuntimeConfig::default()
        };
        let streamed = run_streaming(&sys, jobs.clone(), &cfg);
        assert_eq!(streamed.outcomes.len(), serial.len());
        for ((sid, s), (rid, r)) in streamed.outcomes.iter().zip(&serial) {
            assert_eq!(sid, rid);
            assert_eq!(s, r, "frame {sid} diverged from the one-shot path");
        }
    }
}

/// Multi-tag frames route through the batched detect stage; streamed
/// outcomes must still match the one-shot path bit for bit, every tag must
/// be reported, and most tags should be found and decoded.
#[test]
fn multi_tag_stream_matches_one_shot_path() {
    let sys = streaming_system();
    let jobs = multi_tag_jobs(&sys, 12, 4, 11);
    let serial = run_serial(&sys, &jobs);

    for (workers, capacity) in [(StageWorkers::uniform(1), 2), (StageWorkers::uniform(2), 4)] {
        let cfg = RuntimeConfig {
            queue_capacity: capacity,
            policy: Backpressure::Block,
            workers,
            ..RuntimeConfig::default()
        };
        let streamed = run_streaming(&sys, jobs.clone(), &cfg);
        assert_eq!(streamed.outcomes.len(), serial.len());
        for ((sid, s), (rid, r)) in streamed.outcomes.iter().zip(&serial) {
            assert_eq!(sid, rid);
            assert_eq!(s, r, "multi-tag frame {sid} diverged from one-shot");
        }
    }

    // Sanity on content: each frame reports all 4 tags, the primary's bits
    // surface in `uplink_bits`, and most tags localize + decode.
    let mut located = 0usize;
    let mut decoded = 0usize;
    let mut total = 0usize;
    for (_, o) in &serial {
        assert_eq!(o.tags.len(), 4);
        assert_eq!(o.location, o.tags[0].location);
        if o.tags[0].location.is_some() {
            assert_eq!(
                o.uplink_bits.as_deref(),
                o.tags[0].uplink.as_ref().map(|d| &d.bits[..])
            );
        }
        for t in &o.tags {
            total += 1;
            located += t.location.is_some() as usize;
            decoded += t.uplink.is_some() as usize;
        }
    }
    assert!(located * 10 >= total * 8, "only {located}/{total} located");
    assert!(decoded * 10 >= total * 7, "only {decoded}/{total} decoded");
}

/// Same spec + same seed streamed twice must give identical outcomes
/// (scheduling-independent determinism).
#[test]
fn streaming_is_deterministic_across_runs() {
    let sys = streaming_system();
    let spec = WorkloadSpec::four_by_eight(16, 99);
    let cfg = RuntimeConfig::default();
    let a = run_streaming(&sys, spec.jobs(&sys), &cfg);
    let b = run_streaming(&sys, spec.jobs(&sys), &cfg);
    assert_eq!(a.outcomes, b.outcomes);
}

/// Drop-oldest backpressure on an overloaded queue sheds frames and counts
/// every shed frame; blocking never sheds.
#[test]
fn drop_oldest_sheds_and_accounts() {
    let sys = streaming_system();
    let spec = WorkloadSpec::four_by_eight(30, 5);
    let cfg = RuntimeConfig {
        queue_capacity: 1,
        policy: Backpressure::DropOldest,
        workers: StageWorkers::uniform(1),
        ..RuntimeConfig::default()
    };
    let report = run_streaming(&sys, spec.jobs(&sys), &cfg);
    // Conservation: completed + dropped = offered. (The source never blocks
    // under drop-oldest, so all 30 jobs enter the first queue.)
    assert_eq!(
        report.metrics.frames_completed + report.metrics.total_drops,
        30,
        "dropped frames must be accounted for"
    );
    // Results that did come through are still frame-id ordered.
    let ids: Vec<u64> = report.outcomes.iter().map(|(id, _)| *id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
}

/// On a machine with real parallelism the pipeline must beat the serial
/// path by >=2x frames/sec. Gated on core count: a single-core runner can
/// only measure thread overhead, not pipelining.
#[test]
fn pipelined_beats_serial_on_multicore() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} core(s) available");
        return;
    }
    let sys = streaming_system();
    let jobs = WorkloadSpec::four_by_eight(48, 42).jobs(&sys);

    let t0 = std::time::Instant::now();
    let serial = run_serial(&sys, &jobs);
    let serial_elapsed = t0.elapsed();

    let cfg = RuntimeConfig {
        queue_capacity: 8,
        policy: Backpressure::Block,
        workers: StageWorkers::auto(),
        ..RuntimeConfig::default()
    };
    let t1 = std::time::Instant::now();
    let streamed = run_streaming(&sys, jobs, &cfg);
    let streamed_elapsed = t1.elapsed();

    assert_eq!(streamed.outcomes.len(), serial.len());
    let speedup = serial_elapsed.as_secs_f64() / streamed_elapsed.as_secs_f64();
    assert!(
        speedup >= 2.0,
        "pipelined path only {speedup:.2}x faster on {cores} cores \
         (serial {serial_elapsed:?}, pipelined {streamed_elapsed:?})"
    );
}

/// Metrics snapshots export to text and parseable JSON.
#[test]
fn metrics_snapshot_exports() {
    let sys = streaming_system();
    let report = run_streaming(
        &sys,
        WorkloadSpec::four_by_eight(8, 3).jobs(&sys),
        &RuntimeConfig::default(),
    );
    let text = report.metrics.to_text();
    for stage in ["synthesize", "dechirp", "align", "doppler", "detect"] {
        assert!(text.contains(stage), "text snapshot missing {stage}");
    }
    let json = report.metrics.to_json().to_pretty();
    let parsed = biscatter_core::json::parse(&json).expect("snapshot JSON parses");
    assert_eq!(
        parsed
            .get("frames_completed")
            .and_then(biscatter_core::json::Value::as_f64),
        Some(8.0)
    );
    let stages = parsed
        .get("stages")
        .and_then(biscatter_core::json::Value::as_array)
        .expect("stages array");
    assert_eq!(stages.len(), 5);
}
