//! Bounded MPMC queue with selectable backpressure, built on
//! `std::sync::{Mutex, Condvar}`.
//!
//! Every inter-stage edge of the streaming pipeline is one of these. The
//! queue tracks its own depth high-water mark and drop count, so stage
//! metrics can report how congested each edge ran. Queues built with
//! [`BoundedQueue::named`] additionally publish their depth (sampled at
//! every push) and eviction count as `runtime.queue.<name>.*` registry
//! metrics, giving live congestion visibility mid-run.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use biscatter_obs::metrics::{Counter, Gauge};

/// What a producer does when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block until a consumer makes room (lossless).
    Block,
    /// Evict the oldest queued item to make room (bounded latency, lossy);
    /// evictions are counted in [`BoundedQueue::drops`].
    DropOldest,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
    drops: u64,
}

/// Registry handles for one named queue's congestion metrics.
struct QueueMetrics {
    depth: Gauge,
    high_water: Gauge,
    drops: Counter,
}

/// Outcome of a non-blocking [`BoundedQueue::try_pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryPop<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue is open but currently empty — try again later.
    Empty,
    /// The queue is closed and fully drained — no more items will arrive.
    Closed,
}

/// Why a non-blocking [`BoundedQueue::try_push`] declined the item.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity; the item is handed back untouched.
    Full(T),
    /// The queue is closed; the item is gone.
    Closed,
}

/// A bounded multi-producer/multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: Backpressure,
    metrics: Option<QueueMetrics>,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize, policy: Backpressure) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                high_water: 0,
                drops: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            policy,
            metrics: None,
        }
    }

    /// [`new`](Self::new), additionally publishing `runtime.queue.<name>.depth`
    /// (sampled at each push) and `.high_water` gauges plus a `.drops`
    /// eviction counter to the global metric registry.
    pub fn named(capacity: usize, policy: Backpressure, name: &str) -> Self {
        Self::named_at(capacity, policy, &format!("runtime.queue.{name}"))
    }

    /// Like [`named`](Self::named) but takes the full registry base name
    /// instead of prepending `runtime.queue.`. Multi-cell processes scope
    /// their queues as `cell<id>.runtime.queue.<stage>` (and the fleet
    /// intake as `cell<id>.fleet.intake`) so concurrent pipelines report
    /// disjoint gauges; the legacy unscoped names remain the single-cell
    /// default.
    pub fn named_at(capacity: usize, policy: Backpressure, base: &str) -> Self {
        let r = biscatter_obs::registry();
        let mut q = Self::new(capacity, policy);
        q.metrics = Some(QueueMetrics {
            depth: r.gauge(&format!("{base}.depth")),
            high_water: r.gauge(&format!("{base}.high_water")),
            drops: r.counter(&format!("{base}.drops")),
        });
        q
    }

    /// Enqueues `item`. Under [`Backpressure::Block`] this waits for room;
    /// under [`Backpressure::DropOldest`] it evicts the oldest item instead.
    /// Returns `false` (dropping `item`) if the queue is closed.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.closed {
                return false;
            }
            if st.items.len() < self.capacity {
                break;
            }
            match self.policy {
                Backpressure::Block => {
                    st = self.not_full.wait(st).expect("queue lock");
                }
                Backpressure::DropOldest => {
                    st.items.pop_front();
                    st.drops += 1;
                    if let Some(m) = &self.metrics {
                        m.drops.inc();
                    }
                    break;
                }
            }
        }
        st.items.push_back(item);
        st.high_water = st.high_water.max(st.items.len());
        if let Some(m) = &self.metrics {
            m.depth.set(st.items.len() as f64);
            m.high_water.set_max(st.high_water as f64);
        }
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the oldest item, waiting while the queue is empty but open.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = st.items.pop_front() {
                if let Some(m) = &self.metrics {
                    m.depth.set(st.items.len() as f64);
                }
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue lock");
        }
    }

    /// Non-blocking pop for cooperative schedulers that multiplex several
    /// queues on one thread: returns immediately instead of waiting.
    pub fn try_pop(&self) -> TryPop<T> {
        let mut st = self.state.lock().expect("queue lock");
        if let Some(item) = st.items.pop_front() {
            if let Some(m) = &self.metrics {
                m.depth.set(st.items.len() as f64);
            }
            self.not_full.notify_one();
            return TryPop::Item(item);
        }
        if st.closed {
            TryPop::Closed
        } else {
            TryPop::Empty
        }
    }

    /// Non-blocking push: enqueues `item` only if there is room right now.
    /// Returns the item back to the caller when the queue is full (so a
    /// rejecting admission policy can count and discard it) and drops it
    /// with `Err` when closed. Never evicts, regardless of policy.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed {
            return Err(TryPushError::Closed);
        }
        if st.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        st.items.push_back(item);
        st.high_water = st.high_water.max(st.items.len());
        if let Some(m) = &self.metrics {
            m.depth.set(st.items.len() as f64);
            m.high_water.set_max(st.high_water as f64);
        }
        self.not_empty.notify_one();
        Ok(())
    }

    /// Push that evicts the oldest queued item when full (regardless of the
    /// queue's configured policy), returning the evicted item so the caller
    /// can account for it — the fleet's drop-oldest admission needs the
    /// victim to keep handoff sessions live. Returns `Err(item)` if closed.
    pub fn push_evict(&self, item: T) -> Result<Option<T>, T> {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed {
            return Err(item);
        }
        let evicted = if st.items.len() >= self.capacity {
            let victim = st.items.pop_front();
            st.drops += 1;
            if let Some(m) = &self.metrics {
                m.drops.inc();
            }
            victim
        } else {
            None
        };
        st.items.push_back(item);
        st.high_water = st.high_water.max(st.items.len());
        if let Some(m) = &self.metrics {
            m.depth.set(st.items.len() as f64);
            m.high_water.set_max(st.high_water as f64);
        }
        self.not_empty.notify_one();
        Ok(evicted)
    }

    /// Closes the queue: producers fail fast, consumers drain what remains.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Deepest the queue ever got.
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue lock").high_water
    }

    /// Items evicted under [`Backpressure::DropOldest`].
    pub fn drops(&self) -> u64 {
        self.state.lock().expect("queue lock").drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(4, Backpressure::Block);
        for i in 0..4 {
            assert!(q.push(i));
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn drop_oldest_evicts_and_counts() {
        let q = BoundedQueue::new(2, Backpressure::DropOldest);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(q.push(3)); // evicts 1
        assert_eq!(q.drops(), 1);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4, Backpressure::Block);
        q.push(7);
        q.close();
        assert!(!q.push(8), "push after close must fail");
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_producer_unblocks_on_pop() {
        let q = Arc::new(BoundedQueue::new(1, Backpressure::Block));
        q.push(0);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1));
        // Give the producer a moment to block on the full queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.drops(), 0);
    }

    #[test]
    fn blocked_producer_released_by_close() {
        let q = Arc::new(BoundedQueue::new(1, Backpressure::Block));
        q.push(0);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(!producer.join().unwrap(), "close must release the producer");
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::new(2, Backpressure::Block);
        assert_eq!(q.try_pop(), TryPop::Empty);
        q.push(5);
        assert_eq!(q.try_pop(), TryPop::Item(5));
        assert_eq!(q.try_pop(), TryPop::Empty);
        q.close();
        assert_eq!(q.try_pop(), TryPop::Closed);
    }

    #[test]
    fn try_push_hands_back_on_full() {
        let q = BoundedQueue::new(1, Backpressure::Block);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(TryPushError::Full(2)));
        assert_eq!(q.drops(), 0, "a rejected push is not an eviction");
        assert_eq!(q.pop(), Some(1));
        q.close();
        assert_eq!(q.try_push(3), Err(TryPushError::Closed));
    }

    #[test]
    fn push_evict_returns_the_victim() {
        let q = BoundedQueue::new(2, Backpressure::Block);
        assert_eq!(q.push_evict(1), Ok(None));
        assert_eq!(q.push_evict(2), Ok(None));
        assert_eq!(q.push_evict(3), Ok(Some(1)));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        q.close();
        assert_eq!(q.push_evict(4), Err(4));
    }

    #[test]
    fn mpmc_totals_preserved() {
        let q = Arc::new(BoundedQueue::new(8, Backpressure::Block));
        let total: u64 = 500;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..(total / 4) {
                        q.push(p * 1000 + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while q.pop().is_some() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(consumed, total);
    }
}
