//! # biscatter-runtime
//!
//! Streaming ISAC runtime for BiScatter: a staged frame pipeline that
//! ingests continuous frames from many simulated radar+tag deployments and
//! pushes them through the integrated sensing/communication chain with
//! worker pools, bounded queues, configurable backpressure, and per-stage
//! metrics.
//!
//! The one-shot path ([`biscatter_core::isac::run_isac_frame`]) processes a
//! frame start-to-finish on one thread. This crate runs the *same five
//! stages* (frame synthesis → dechirp/IF → align + IF correction →
//! range–Doppler → uplink demod + CFAR/localization) as a pipeline, so
//! frame `k+1` can be synthesized while frame `k` is still being aligned.
//! Per-frame seeds make the result independent of scheduling: under the
//! lossless `Block` policy the streamed outcomes are bit-identical to the
//! serial path.
//!
//! Frames whose job carries a [`biscatter_core::isac::ColdStartSpec`] first
//! pass through the correlator-bank acquisition stage
//! ([`pipeline::Cell::process_cold_start`]): the cell recovers the tag's
//! timing offset and chirp slope from the raw dwell, then runs the aligned
//! frame only if acquisition succeeds. [`source::cold_start_jobs`] builds a
//! deterministic workload of such unsynchronized arrivals.
//!
//! ```no_run
//! use biscatter_runtime::pipeline::{run_streaming, RuntimeConfig};
//! use biscatter_runtime::source::{streaming_system, WorkloadSpec};
//!
//! let sys = streaming_system();
//! let jobs = WorkloadSpec::four_by_eight(200, 42).jobs(&sys);
//! let report = run_streaming(&sys, jobs, &RuntimeConfig::default());
//! println!("{}", report.metrics.to_text());
//! ```

pub mod metrics;
pub mod pipeline;
pub mod queue;
pub mod source;

/// The scoped parallel-compute layer the DSP stages fan out on
/// (re-exported so runtime users can size or share a [`compute::ComputePool`]).
pub use biscatter_compute as compute;

/// The observability layer (re-exported so runtime users can toggle
/// tracing, open spans, and read the metric registry without a direct
/// `biscatter-obs` dependency).
pub use biscatter_obs as obs;

pub use biscatter_core::isac::precision::PrecisionTier;
pub use metrics::{
    LatencyHistogram, LatencySnapshot, MetricsSnapshot, RegistrySnapshot, StageMetrics,
    StageSnapshot,
};
pub use pipeline::{run_serial, run_streaming, Cell, RunReport, RuntimeConfig, StageWorkers};
pub use queue::{Backpressure, BoundedQueue, TryPop, TryPushError};
pub use source::{streaming_system, CellJob, FrameJob, MobilitySpec, SessionHop, WorkloadSpec};
