//! Workload generation: deterministic streams of ISAC frame jobs over
//! multiple simulated radar+tag deployments.
//!
//! Every job carries its own seed, derived from the workload's base seed and
//! the frame id with splitmix64. Frame results therefore depend only on the
//! job, never on worker scheduling — the streaming pipeline and the one-shot
//! path produce identical outcomes for the same spec.

use biscatter_core::isac::{ClutterSpec, ColdStartSpec, IsacScenario, MoverSpec, TagDeployment};
use biscatter_core::system::BiScatterSystem;
use biscatter_radar::receiver::uplink::UplinkScheme;

/// One frame's worth of work for the pipeline.
#[derive(Debug, Clone)]
pub struct FrameJob {
    /// Monotonically increasing frame id (also the sink's sort key).
    pub id: u64,
    /// Which simulated radar emits this frame.
    pub radar_id: usize,
    /// Which of that radar's tags is addressed.
    pub tag_id: usize,
    /// Tag deployment + environment for this frame.
    pub scenario: IsacScenario,
    /// Downlink payload bytes.
    pub payload: Vec<u8>,
    /// Per-frame noise seed (splitmix-derived, scheduling-independent).
    pub seed: u64,
}

/// Parameters of a synthetic multi-radar streaming workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of simulated radars (frames round-robin across them).
    pub n_radars: usize,
    /// Tags deployed per radar.
    pub tags_per_radar: usize,
    /// Total frames to stream.
    pub n_frames: usize,
    /// Base seed; all per-frame seeds derive from it.
    pub base_seed: u64,
}

impl WorkloadSpec {
    /// The ISSUE workload: 4 radars, 8 tags each.
    pub fn four_by_eight(n_frames: usize, base_seed: u64) -> Self {
        WorkloadSpec {
            n_radars: 4,
            tags_per_radar: 8,
            n_frames,
            base_seed,
        }
    }

    /// Expands the spec into the full deterministic job list.
    ///
    /// Frame `f` goes to radar `f % n_radars`, addressing that radar's tags
    /// round-robin. Scenario geometry, payload, and seed are all pure
    /// functions of `(spec, f)`.
    pub fn jobs(&self, sys: &BiScatterSystem) -> Vec<FrameJob> {
        assert!(self.n_radars > 0 && self.tags_per_radar > 0);
        let frame_s = sys.frame_chirps as f64 * sys.radar.t_period;
        (0..self.n_frames as u64)
            .map(|id| {
                let radar_id = (id as usize) % self.n_radars;
                let tag_id = (id as usize / self.n_radars) % self.tags_per_radar;
                let seed = splitmix64(self.base_seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));

                // Tags sit 1.5–8 m out on a per-radar grid; subcarriers are
                // spread across Doppler bins 12..28 so neighbouring tags stay
                // separable on the range–Doppler map.
                let range_m = 1.5 + 0.75 * tag_id as f64 + 0.2 * radar_id as f64;
                let dopp_bin = 12 + 2 * tag_id;
                let mod_freq_hz = dopp_bin as f64 / frame_s;
                let mut scenario = IsacScenario::single_tag(range_m, mod_freq_hz);
                // Alternate environments: even radars see office clutter,
                // odd radars watch a walking-speed mover.
                if radar_id % 2 == 0 {
                    scenario.clutter = vec![ClutterSpec {
                        range_m: 3.4 + 0.3 * radar_id as f64,
                        relative_amp: 6.0,
                    }];
                } else {
                    scenario.movers = vec![MoverSpec {
                        range_m: 6.0,
                        velocity_mps: if radar_id % 4 == 1 { -1.5 } else { 2.0 },
                        relative_amp: 8.0,
                    }];
                }

                // 4-byte command payload, unique per frame.
                let payload = seed.to_be_bytes()[..4].to_vec();

                FrameJob {
                    id,
                    radar_id,
                    tag_id,
                    scenario,
                    payload,
                    seed,
                }
            })
            .collect()
    }
}

/// A deterministic multi-tag workload: every frame carries `tags_per_frame`
/// tags (one primary + extras) at distinct modulation bins and ranges, so
/// the pipeline's detect stage exercises the batched multi-tag engine. Odd
/// extras transmit seeded uplink bits, even extras beacon only; geometry,
/// bits, and seeds are pure functions of `(base_seed, frame id)`, like
/// [`WorkloadSpec::jobs`].
pub fn multi_tag_jobs(
    sys: &BiScatterSystem,
    n_frames: usize,
    tags_per_frame: usize,
    base_seed: u64,
) -> Vec<FrameJob> {
    assert!(tags_per_frame >= 1, "at least the primary tag");
    let frame_s = sys.frame_chirps as f64 * sys.radar.t_period;
    let bit_s = 8.0 * sys.radar.t_period;
    let n_bits = sys.frame_chirps / 8;
    (0..n_frames as u64)
        .map(|id| {
            let seed = splitmix64(base_seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let bits_for = |slot: usize| -> Vec<bool> {
                let mut s = splitmix64(seed ^ slot as u64);
                (0..n_bits)
                    .map(|_| {
                        s = splitmix64(s);
                        s & 1 == 1
                    })
                    .collect()
            };
            // Odd Doppler bins 5, 7, 9, … keep the tags' fundamentals (and
            // any in-band harmonics) on distinct map rows.
            let freq_for = |slot: usize| (5 + 2 * slot) as f64 / frame_s;
            let mut scenario = IsacScenario::single_tag(2.0, freq_for(0));
            scenario.uplink_bits = bits_for(0);
            scenario.uplink_scheme = UplinkScheme::Ook {
                freq_hz: freq_for(0),
            };
            scenario.uplink_bit_duration_s = bit_s;
            for t in 1..tags_per_frame {
                scenario = scenario.with_extra_tag(TagDeployment {
                    range_m: 2.0 + 0.8 * t as f64,
                    mod_freq_hz: freq_for(t),
                    uplink_bits: if t % 2 == 0 { Vec::new() } else { bits_for(t) },
                    uplink_scheme: UplinkScheme::Ook {
                        freq_hz: freq_for(t),
                    },
                    uplink_bit_duration_s: bit_s,
                });
            }
            scenario.clutter = vec![ClutterSpec {
                range_m: 7.5,
                relative_amp: 5.0,
            }];
            let payload = seed.to_be_bytes()[..4].to_vec();
            FrameJob {
                id,
                radar_id: 0,
                tag_id: 0,
                scenario,
                payload,
                seed,
            }
        })
        .collect()
}

/// A deterministic cold-start workload: every frame's tag starts
/// unsynchronized, so the pipeline must run the acquisition stage before
/// any aligned processing. Timing offsets are seed-derived in
/// `[0, 0.9·T_period)`, tags cycle through the first four slope hypotheses,
/// and every seventh frame is a noise-only dwell the acquisition stage must
/// reject — all pure functions of `(base_seed, frame id)`, like
/// [`WorkloadSpec::jobs`].
pub fn cold_start_jobs(sys: &BiScatterSystem, n_frames: usize, base_seed: u64) -> Vec<FrameJob> {
    let frame_s = sys.frame_chirps as f64 * sys.radar.t_period;
    (0..n_frames as u64)
        .map(|id| {
            let seed = splitmix64(base_seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let offset_s =
                (splitmix64(seed) % 1_000_000) as f64 / 1_000_000.0 * 0.9 * sys.radar.t_period;
            let tag_id = (id % 4) as usize;
            let mut scenario = IsacScenario::single_tag(
                2.5 + 0.5 * tag_id as f64,
                (16 + 2 * tag_id) as f64 / frame_s,
            );
            scenario.cold_start = Some(ColdStartSpec {
                timing_offset_s: offset_s,
                slope_idx: tag_id,
                tag_present: id % 7 != 6,
            });
            FrameJob {
                id,
                radar_id: 0,
                tag_id,
                scenario,
                payload: seed.to_be_bytes()[..4].to_vec(),
                seed,
            }
        })
        .collect()
}

/// Identity of a mobile tag's uplink-session frame inside a fleet workload.
///
/// A mobile tag emits one uplink frame per tick; `seq` is the tick, i.e.
/// the tag's session-local frame index. Whichever cell processes the frame
/// appends its decoded bits to the tag's session at position `seq` — the
/// `HandoffBus` in `biscatter-fleet` uses this ordering key to keep the
/// accumulated bit sequence identical no matter how cells are sharded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionHop {
    /// Which mobile tag (0-based, stable across the whole workload).
    pub tag: usize,
    /// The tag's session-local frame index (append order).
    pub seq: u64,
}

/// One frame of fleet work: a [`FrameJob`] bound for a specific cell, plus
/// the uplink-session hop when the frame belongs to a mobile tag.
#[derive(Debug, Clone)]
pub struct CellJob {
    /// Destination cell index in `0..n_cells`.
    pub cell: usize,
    /// `Some` when this frame carries a mobile tag's uplink window.
    pub hop: Option<SessionHop>,
    /// The frame itself (id is globally unique across the fleet).
    pub job: FrameJob,
}

/// Parameters of a deterministic multi-cell mobility workload.
///
/// The fleet timeline advances in ticks `0..n_ticks`; every cell receives
/// exactly one frame per tick. `mobile_tags` tags roam the fleet: at tick
/// `t`, tag `m` is camped in cell `(m + t / dwell_ticks) % n_cells`, so
/// after each dwell period every mobile tag hands off to the next cell
/// (identity and uplink session intact). Cells not hosting a mobile tag at
/// a tick process a stationary background frame. Geometry, payloads, uplink
/// bits, and seeds are all pure functions of `(spec, tick, cell)`, like
/// [`WorkloadSpec::jobs`].
#[derive(Debug, Clone, Copy)]
pub struct MobilitySpec {
    /// Number of radar cells in the fleet.
    pub n_cells: usize,
    /// Number of roaming tags (at most `n_cells`: the camping rule parks
    /// distinct tags in distinct cells).
    pub mobile_tags: usize,
    /// Ticks in the workload; every mobile tag emits one uplink frame per
    /// tick, so each session accumulates `n_ticks` windows of bits.
    pub n_ticks: usize,
    /// Ticks a mobile tag camps in one cell before handing off.
    pub dwell_ticks: usize,
    /// Base seed; every per-frame seed derives from it.
    pub base_seed: u64,
}

impl MobilitySpec {
    /// A two-cell smoke configuration (used by the handoff determinism
    /// test): one tag bouncing between two cells every `dwell` ticks.
    pub fn two_cell(n_ticks: usize, dwell: usize, base_seed: u64) -> Self {
        MobilitySpec {
            n_cells: 2,
            mobile_tags: 1,
            n_ticks,
            dwell_ticks: dwell,
            base_seed,
        }
    }

    /// Which cell mobile tag `m` is camped in at tick `t`.
    pub fn cell_of(&self, tag: usize, tick: u64) -> usize {
        (tag + (tick as usize / self.dwell_ticks.max(1))) % self.n_cells
    }

    /// Uplink bits per mobile frame for `sys` (one bit per 8 chirps, the
    /// same framing as [`multi_tag_jobs`]).
    pub fn bits_per_frame(sys: &BiScatterSystem) -> usize {
        sys.frame_chirps / 8
    }

    /// The seeded uplink bits mobile tag `tag` transmits at tick `seq` —
    /// the ground truth the decoded session is checked against.
    pub fn tx_bits(&self, sys: &BiScatterSystem, tag: usize, seq: u64) -> Vec<bool> {
        let n_bits = Self::bits_per_frame(sys);
        let mut s = splitmix64(self.base_seed ^ 0xB17_5EED ^ ((tag as u64) << 32) ^ seq);
        (0..n_bits)
            .map(|_| {
                s = splitmix64(s);
                s & 1 == 1
            })
            .collect()
    }

    /// The frame mobile tag `tag` emits at tick `seq`, independent of which
    /// cell hosts it — handoff must not change the radio link, only the
    /// owner. (Globally unique frame ids come from [`Self::jobs`]; the
    /// oracle path reuses this builder with the same ids.)
    fn mobile_job(&self, sys: &BiScatterSystem, id: u64, tag: usize, seq: u64) -> FrameJob {
        let frame_s = sys.frame_chirps as f64 * sys.radar.t_period;
        let seed = splitmix64(
            self.base_seed ^ ((tag as u64) << 48) ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // Doppler bins 16, 18, … keep each mobile tag's fundamental on its
        // own map row, in the band the OOK subcarrier decoder resolves most
        // reliably for 32-chirp frames.
        let mod_freq_hz = (16 + 2 * tag) as f64 / frame_s;
        let mut scenario = IsacScenario::single_tag(4.0 + 0.6 * tag as f64, mod_freq_hz);
        scenario.uplink_bits = self.tx_bits(sys, tag, seq);
        scenario.uplink_scheme = UplinkScheme::Ook {
            freq_hz: mod_freq_hz,
        };
        scenario.uplink_bit_duration_s = 8.0 * sys.radar.t_period;
        FrameJob {
            id,
            radar_id: 0,
            tag_id: tag,
            scenario,
            payload: seed.to_be_bytes()[..4].to_vec(),
            seed,
        }
    }

    /// The background frame cell `cell` processes when no mobile tag is
    /// camped there: a stationary tag against office clutter. (`id` encodes
    /// the tick, so the seed is still tick-unique.)
    fn background_job(&self, sys: &BiScatterSystem, id: u64, cell: usize) -> FrameJob {
        let frame_s = sys.frame_chirps as f64 * sys.radar.t_period;
        let seed = splitmix64(self.base_seed ^ id.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let mut scenario = IsacScenario::single_tag(3.0 + 0.5 * (cell % 8) as f64, 24.0 / frame_s);
        scenario.clutter = vec![ClutterSpec {
            range_m: 6.5,
            relative_amp: 5.0,
        }];
        FrameJob {
            id,
            radar_id: cell,
            tag_id: 0,
            scenario,
            payload: seed.to_be_bytes()[..4].to_vec(),
            seed,
        }
    }

    /// Expands the spec into the fleet's full job list, tick-major then
    /// cell-major (the admission order a fleet feeder uses). Frame
    /// `tick * n_cells + cell` goes to `cell`; at most one mobile tag camps
    /// per cell per tick.
    pub fn jobs(&self, sys: &BiScatterSystem) -> Vec<CellJob> {
        assert!(self.n_cells > 0, "fleet needs at least one cell");
        assert!(
            self.mobile_tags <= self.n_cells,
            "at most one mobile tag per cell per tick"
        );
        let mut out = Vec::with_capacity(self.n_cells * self.n_ticks);
        for tick in 0..self.n_ticks as u64 {
            // Invert the camping rule once per tick: which tag (if any) is
            // in each cell right now.
            let mut tag_in_cell: Vec<Option<usize>> = vec![None; self.n_cells];
            for tag in 0..self.mobile_tags {
                tag_in_cell[self.cell_of(tag, tick)] = Some(tag);
            }
            for (cell, camped) in tag_in_cell.iter().enumerate() {
                let id = tick * self.n_cells as u64 + cell as u64;
                let (job, hop) = match *camped {
                    Some(tag) => (
                        self.mobile_job(sys, id, tag, tick),
                        Some(SessionHop { tag, seq: tick }),
                    ),
                    None => (self.background_job(sys, id, cell), None),
                };
                out.push(CellJob { cell, hop, job });
            }
        }
        out
    }

    /// The single-cell oracle for mobile tag `tag`: its frames in session
    /// order, exactly as [`Self::jobs`] would route them (same ids, same
    /// seeds). Decoding these serially and concatenating the bits gives the
    /// reference session the sharded fleet must reproduce bit-for-bit.
    pub fn oracle_jobs(&self, sys: &BiScatterSystem, tag: usize) -> Vec<FrameJob> {
        (0..self.n_ticks as u64)
            .map(|tick| {
                let cell = self.cell_of(tag, tick);
                let id = tick * self.n_cells as u64 + cell as u64;
                self.mobile_job(sys, id, tag, tick)
            })
            .collect()
    }
}

/// A reduced-cost `paper_9ghz` system for streaming tests, examples, and
/// benchmarks: 32-chirp frames and 256-point range processing keep a single
/// frame cheap enough that multi-hundred-frame streams run in CI, while every
/// stage still does real work.
pub fn streaming_system() -> BiScatterSystem {
    let mut sys = BiScatterSystem::paper_9ghz();
    sys.frame_chirps = 32;
    sys.rx.n_fft = 256;
    sys.rx.n_range_bins = 256;
    sys
}

/// splitmix64: cheap, high-quality 64-bit mixing (same finalizer the core
/// noise source uses for seeding).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_are_deterministic() {
        let sys = streaming_system();
        let spec = WorkloadSpec::four_by_eight(64, 7);
        let a = spec.jobs(&sys);
        let b = spec.jobs(&sys);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.payload, y.payload);
            assert_eq!(x.scenario.tag_range_m, y.scenario.tag_range_m);
        }
    }

    #[test]
    fn jobs_cover_all_radars_and_tags() {
        let sys = streaming_system();
        let spec = WorkloadSpec::four_by_eight(32, 1);
        let jobs = spec.jobs(&sys);
        let radars: std::collections::BTreeSet<_> = jobs.iter().map(|j| j.radar_id).collect();
        let tags: std::collections::BTreeSet<_> = jobs.iter().map(|j| j.tag_id).collect();
        assert_eq!(radars.len(), 4);
        assert_eq!(tags.len(), 8);
    }

    #[test]
    fn mobility_jobs_route_one_mobile_tag_per_cell_per_tick() {
        let sys = streaming_system();
        let spec = MobilitySpec {
            n_cells: 4,
            mobile_tags: 3,
            n_ticks: 12,
            dwell_ticks: 2,
            base_seed: 9,
        };
        let jobs = spec.jobs(&sys);
        assert_eq!(jobs.len(), 4 * 12);
        // Ids are globally unique and tick-major.
        for (i, cj) in jobs.iter().enumerate() {
            assert_eq!(cj.job.id, i as u64);
            assert_eq!(cj.cell, i % 4);
        }
        // Every tick carries exactly `mobile_tags` hops, in distinct cells.
        for tick in 0..12u64 {
            let hops: Vec<_> = jobs
                .iter()
                .filter(|cj| cj.job.id / 4 == tick && cj.hop.is_some())
                .collect();
            assert_eq!(hops.len(), 3);
            let cells: std::collections::BTreeSet<_> = hops.iter().map(|cj| cj.cell).collect();
            assert_eq!(cells.len(), 3);
            for cj in hops {
                let hop = cj.hop.unwrap();
                assert_eq!(hop.seq, tick);
                assert_eq!(spec.cell_of(hop.tag, tick), cj.cell);
            }
        }
        // Each tag visits more than one cell over the workload (handoffs
        // actually happen).
        for tag in 0..3 {
            let cells: std::collections::BTreeSet<_> =
                (0..12).map(|t| spec.cell_of(tag, t)).collect();
            assert!(cells.len() > 1, "tag {tag} never handed off");
        }
    }

    #[test]
    fn mobility_oracle_matches_routed_mobile_frames() {
        let sys = streaming_system();
        let spec = MobilitySpec::two_cell(10, 3, 77);
        let jobs = spec.jobs(&sys);
        let oracle = spec.oracle_jobs(&sys, 0);
        assert_eq!(oracle.len(), 10);
        let routed: Vec<_> = jobs
            .iter()
            .filter(|cj| cj.hop.is_some_and(|h| h.tag == 0))
            .collect();
        assert_eq!(routed.len(), 10);
        for (o, r) in oracle.iter().zip(&routed) {
            assert_eq!(o.id, r.job.id);
            assert_eq!(o.seed, r.job.seed);
            assert_eq!(o.scenario.uplink_bits, r.job.scenario.uplink_bits);
        }
    }

    #[test]
    fn different_base_seeds_differ() {
        let sys = streaming_system();
        let a = WorkloadSpec::four_by_eight(8, 1).jobs(&sys);
        let b = WorkloadSpec::four_by_eight(8, 2).jobs(&sys);
        assert!(a.iter().zip(&b).any(|(x, y)| x.seed != y.seed));
    }
}
