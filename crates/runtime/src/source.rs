//! Workload generation: deterministic streams of ISAC frame jobs over
//! multiple simulated radar+tag deployments.
//!
//! Every job carries its own seed, derived from the workload's base seed and
//! the frame id with splitmix64. Frame results therefore depend only on the
//! job, never on worker scheduling — the streaming pipeline and the one-shot
//! path produce identical outcomes for the same spec.

use biscatter_core::isac::{ClutterSpec, IsacScenario, MoverSpec, TagDeployment};
use biscatter_core::system::BiScatterSystem;
use biscatter_radar::receiver::uplink::UplinkScheme;

/// One frame's worth of work for the pipeline.
#[derive(Debug, Clone)]
pub struct FrameJob {
    /// Monotonically increasing frame id (also the sink's sort key).
    pub id: u64,
    /// Which simulated radar emits this frame.
    pub radar_id: usize,
    /// Which of that radar's tags is addressed.
    pub tag_id: usize,
    /// Tag deployment + environment for this frame.
    pub scenario: IsacScenario,
    /// Downlink payload bytes.
    pub payload: Vec<u8>,
    /// Per-frame noise seed (splitmix-derived, scheduling-independent).
    pub seed: u64,
}

/// Parameters of a synthetic multi-radar streaming workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of simulated radars (frames round-robin across them).
    pub n_radars: usize,
    /// Tags deployed per radar.
    pub tags_per_radar: usize,
    /// Total frames to stream.
    pub n_frames: usize,
    /// Base seed; all per-frame seeds derive from it.
    pub base_seed: u64,
}

impl WorkloadSpec {
    /// The ISSUE workload: 4 radars, 8 tags each.
    pub fn four_by_eight(n_frames: usize, base_seed: u64) -> Self {
        WorkloadSpec {
            n_radars: 4,
            tags_per_radar: 8,
            n_frames,
            base_seed,
        }
    }

    /// Expands the spec into the full deterministic job list.
    ///
    /// Frame `f` goes to radar `f % n_radars`, addressing that radar's tags
    /// round-robin. Scenario geometry, payload, and seed are all pure
    /// functions of `(spec, f)`.
    pub fn jobs(&self, sys: &BiScatterSystem) -> Vec<FrameJob> {
        assert!(self.n_radars > 0 && self.tags_per_radar > 0);
        let frame_s = sys.frame_chirps as f64 * sys.radar.t_period;
        (0..self.n_frames as u64)
            .map(|id| {
                let radar_id = (id as usize) % self.n_radars;
                let tag_id = (id as usize / self.n_radars) % self.tags_per_radar;
                let seed = splitmix64(self.base_seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));

                // Tags sit 1.5–8 m out on a per-radar grid; subcarriers are
                // spread across Doppler bins 12..28 so neighbouring tags stay
                // separable on the range–Doppler map.
                let range_m = 1.5 + 0.75 * tag_id as f64 + 0.2 * radar_id as f64;
                let dopp_bin = 12 + 2 * tag_id;
                let mod_freq_hz = dopp_bin as f64 / frame_s;
                let mut scenario = IsacScenario::single_tag(range_m, mod_freq_hz);
                // Alternate environments: even radars see office clutter,
                // odd radars watch a walking-speed mover.
                if radar_id % 2 == 0 {
                    scenario.clutter = vec![ClutterSpec {
                        range_m: 3.4 + 0.3 * radar_id as f64,
                        relative_amp: 6.0,
                    }];
                } else {
                    scenario.movers = vec![MoverSpec {
                        range_m: 6.0,
                        velocity_mps: if radar_id % 4 == 1 { -1.5 } else { 2.0 },
                        relative_amp: 8.0,
                    }];
                }

                // 4-byte command payload, unique per frame.
                let payload = seed.to_be_bytes()[..4].to_vec();

                FrameJob {
                    id,
                    radar_id,
                    tag_id,
                    scenario,
                    payload,
                    seed,
                }
            })
            .collect()
    }
}

/// A deterministic multi-tag workload: every frame carries `tags_per_frame`
/// tags (one primary + extras) at distinct modulation bins and ranges, so
/// the pipeline's detect stage exercises the batched multi-tag engine. Odd
/// extras transmit seeded uplink bits, even extras beacon only; geometry,
/// bits, and seeds are pure functions of `(base_seed, frame id)`, like
/// [`WorkloadSpec::jobs`].
pub fn multi_tag_jobs(
    sys: &BiScatterSystem,
    n_frames: usize,
    tags_per_frame: usize,
    base_seed: u64,
) -> Vec<FrameJob> {
    assert!(tags_per_frame >= 1, "at least the primary tag");
    let frame_s = sys.frame_chirps as f64 * sys.radar.t_period;
    let bit_s = 8.0 * sys.radar.t_period;
    let n_bits = sys.frame_chirps / 8;
    (0..n_frames as u64)
        .map(|id| {
            let seed = splitmix64(base_seed ^ (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let bits_for = |slot: usize| -> Vec<bool> {
                let mut s = splitmix64(seed ^ slot as u64);
                (0..n_bits)
                    .map(|_| {
                        s = splitmix64(s);
                        s & 1 == 1
                    })
                    .collect()
            };
            // Odd Doppler bins 5, 7, 9, … keep the tags' fundamentals (and
            // any in-band harmonics) on distinct map rows.
            let freq_for = |slot: usize| (5 + 2 * slot) as f64 / frame_s;
            let mut scenario = IsacScenario::single_tag(2.0, freq_for(0));
            scenario.uplink_bits = bits_for(0);
            scenario.uplink_scheme = UplinkScheme::Ook {
                freq_hz: freq_for(0),
            };
            scenario.uplink_bit_duration_s = bit_s;
            for t in 1..tags_per_frame {
                scenario = scenario.with_extra_tag(TagDeployment {
                    range_m: 2.0 + 0.8 * t as f64,
                    mod_freq_hz: freq_for(t),
                    uplink_bits: if t % 2 == 0 { Vec::new() } else { bits_for(t) },
                    uplink_scheme: UplinkScheme::Ook {
                        freq_hz: freq_for(t),
                    },
                    uplink_bit_duration_s: bit_s,
                });
            }
            scenario.clutter = vec![ClutterSpec {
                range_m: 7.5,
                relative_amp: 5.0,
            }];
            let payload = seed.to_be_bytes()[..4].to_vec();
            FrameJob {
                id,
                radar_id: 0,
                tag_id: 0,
                scenario,
                payload,
                seed,
            }
        })
        .collect()
}

/// A reduced-cost `paper_9ghz` system for streaming tests, examples, and
/// benchmarks: 32-chirp frames and 256-point range processing keep a single
/// frame cheap enough that multi-hundred-frame streams run in CI, while every
/// stage still does real work.
pub fn streaming_system() -> BiScatterSystem {
    let mut sys = BiScatterSystem::paper_9ghz();
    sys.frame_chirps = 32;
    sys.rx.n_fft = 256;
    sys.rx.n_range_bins = 256;
    sys
}

/// splitmix64: cheap, high-quality 64-bit mixing (same finalizer the core
/// noise source uses for seeding).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_are_deterministic() {
        let sys = streaming_system();
        let spec = WorkloadSpec::four_by_eight(64, 7);
        let a = spec.jobs(&sys);
        let b = spec.jobs(&sys);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.payload, y.payload);
            assert_eq!(x.scenario.tag_range_m, y.scenario.tag_range_m);
        }
    }

    #[test]
    fn jobs_cover_all_radars_and_tags() {
        let sys = streaming_system();
        let spec = WorkloadSpec::four_by_eight(32, 1);
        let jobs = spec.jobs(&sys);
        let radars: std::collections::BTreeSet<_> = jobs.iter().map(|j| j.radar_id).collect();
        let tags: std::collections::BTreeSet<_> = jobs.iter().map(|j| j.tag_id).collect();
        assert_eq!(radars.len(), 4);
        assert_eq!(tags.len(), 8);
    }

    #[test]
    fn different_base_seeds_differ() {
        let sys = streaming_system();
        let a = WorkloadSpec::four_by_eight(8, 1).jobs(&sys);
        let b = WorkloadSpec::four_by_eight(8, 2).jobs(&sys);
        assert!(a.iter().zip(&b).any(|(x, y)| x.seed != y.seed));
    }
}
