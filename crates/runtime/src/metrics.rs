//! Per-stage runtime metrics: frame counters, queue congestion, and
//! log-bucketed latency histograms with percentile estimation.
//!
//! The histogram types themselves ([`LatencyHistogram`], [`LatencySnapshot`])
//! now live in [`biscatter_obs::metrics`] so every crate can record
//! latencies; they are re-exported here unchanged. Counters are lock-free
//! (`AtomicU64` with relaxed ordering — they are statistics, not
//! synchronization), so recording from worker threads costs a few atomic
//! adds per frame. Each stage also mirrors its latency into a global
//! registry histogram (`runtime.stage.<name>.ns`), so cross-subsystem
//! snapshots see stage timing next to planner/arena/pool telemetry. A
//! [`MetricsSnapshot`] is an immutable copy taken after (or during) a run —
//! including a [`RegistrySnapshot`] of every registered metric — exportable
//! as aligned text or JSON via [`biscatter_core::json`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use biscatter_core::json::Value;
use biscatter_obs::metrics::Histogram;

pub use biscatter_obs::metrics::{LatencyHistogram, LatencySnapshot, RegistrySnapshot};

/// Live counters for one pipeline stage.
pub struct StageMetrics {
    name: &'static str,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    latency: LatencyHistogram,
    /// Cumulative registry mirror of `latency` (`runtime.stage.<name>.ns`):
    /// the local histogram is per-run, the registry one is per-process.
    registry_latency: Histogram,
}

impl StageMetrics {
    pub fn new(name: &'static str) -> Self {
        Self::scoped("", name)
    }

    /// Like [`new`](Self::new) but registers the mirror histogram at
    /// `<prefix>runtime.stage.<name>.ns`. A multi-cell process passes
    /// `"cell<id>."` so each cell's stage timing stays separable; the empty
    /// prefix keeps the legacy unscoped name.
    pub fn scoped(prefix: &str, name: &'static str) -> Self {
        StageMetrics {
            name,
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            registry_latency: biscatter_obs::registry()
                .histogram(&format!("{prefix}runtime.stage.{name}.ns")),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one frame flowing through the stage in `took` processing time.
    pub fn record_frame(&self, took: Duration) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.latency.record(took);
        self.registry_latency.record(took);
    }

    /// Records a frame that entered the stage but was not emitted
    /// (e.g. the downstream queue was closed).
    pub fn record_swallowed(&self, took: Duration) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.latency.record(took);
        self.registry_latency.record(took);
    }

    /// Copies the counters into an immutable [`StageSnapshot`], attaching the
    /// stage's input-queue congestion stats.
    pub fn snapshot(&self, queue_high_water: usize, queue_drops: u64) -> StageSnapshot {
        StageSnapshot {
            name: self.name,
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            queue_high_water,
            queue_drops,
            latency: self.latency.snapshot(),
        }
    }
}

/// Immutable per-stage statistics inside a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    pub name: &'static str,
    pub frames_in: u64,
    pub frames_out: u64,
    /// Deepest the stage's *input* queue ever got.
    pub queue_high_water: usize,
    /// Frames evicted from the stage's input queue under drop-oldest.
    pub queue_drops: u64,
    pub latency: LatencySnapshot,
}

/// Full metrics picture of one pipeline run.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub stages: Vec<StageSnapshot>,
    /// End-to-end latency (job enqueued -> outcome at sink).
    pub end_to_end: LatencySnapshot,
    /// Frames that reached the sink.
    pub frames_completed: u64,
    /// Total frames dropped across all queues.
    pub total_drops: u64,
    pub elapsed: Duration,
    /// Every metric in the global registry at snapshot time (plan cache,
    /// arenas, compute pool, multitag, queue gauges, ...). Cumulative per
    /// process, unlike the per-run stage counters above.
    pub registry: RegistrySnapshot,
}

impl MetricsSnapshot {
    /// Completed frames per wall-clock second.
    pub fn frames_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.frames_completed as f64 / self.elapsed.as_secs_f64()
    }

    /// Renders an aligned human-readable table, followed by the registry
    /// metrics listing.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pipeline: {} frames in {:.3} s ({:.1} frames/s), {} dropped\n",
            self.frames_completed,
            self.elapsed.as_secs_f64(),
            self.frames_per_sec(),
            self.total_drops,
        ));
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
            "stage", "in", "out", "hiwat", "drops", "p50", "p90", "p99", "max"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<12} {:>8} {:>8} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
                s.name,
                s.frames_in,
                s.frames_out,
                s.queue_high_water,
                s.queue_drops,
                fmt_dur(s.latency.percentile(0.50)),
                fmt_dur(s.latency.percentile(0.90)),
                fmt_dur(s.latency.percentile(0.99)),
                fmt_dur(s.latency.max()),
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
            "end-to-end",
            self.end_to_end.count(),
            self.end_to_end.count(),
            "-",
            "-",
            fmt_dur(self.end_to_end.percentile(0.50)),
            fmt_dur(self.end_to_end.percentile(0.90)),
            fmt_dur(self.end_to_end.percentile(0.99)),
            fmt_dur(self.end_to_end.max()),
        ));
        if !self.registry.is_empty() {
            out.push_str("registry:\n");
            out.push_str(&self.registry.to_text());
        }
        out
    }

    /// Renders the snapshot as a JSON value (registry metrics included
    /// under `"registry"`).
    pub fn to_json(&self) -> Value {
        let mut root = std::collections::BTreeMap::new();
        root.insert(
            "frames_completed".to_string(),
            Value::Number(self.frames_completed as f64),
        );
        root.insert(
            "total_drops".to_string(),
            Value::Number(self.total_drops as f64),
        );
        root.insert(
            "elapsed_s".to_string(),
            Value::Number(self.elapsed.as_secs_f64()),
        );
        root.insert(
            "frames_per_sec".to_string(),
            Value::Number(self.frames_per_sec()),
        );
        root.insert(
            "stages".to_string(),
            Value::Array(
                self.stages
                    .iter()
                    .map(|s| {
                        let mut m = s.latency.json_fields();
                        m.insert("name".to_string(), Value::String(s.name.to_string()));
                        m.insert("frames_in".to_string(), Value::Number(s.frames_in as f64));
                        m.insert("frames_out".to_string(), Value::Number(s.frames_out as f64));
                        m.insert(
                            "queue_high_water".to_string(),
                            Value::Number(s.queue_high_water as f64),
                        );
                        m.insert(
                            "queue_drops".to_string(),
                            Value::Number(s.queue_drops as f64),
                        );
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "end_to_end".to_string(),
            Value::Object(self.end_to_end.json_fields()),
        );
        root.insert("registry".to_string(), self.registry.to_json());
        Value::Object(root)
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{}ns", ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_text_and_json() {
        let stage = StageMetrics::new("demo");
        stage.record_frame(Duration::from_micros(150));
        stage.record_frame(Duration::from_micros(250));
        let e2e = LatencyHistogram::default();
        e2e.record(Duration::from_millis(2));
        let snap = MetricsSnapshot {
            stages: vec![stage.snapshot(1, 0)],
            end_to_end: e2e.snapshot(),
            frames_completed: 2,
            total_drops: 0,
            elapsed: Duration::from_millis(10),
            registry: biscatter_obs::registry().snapshot(),
        };
        let text = snap.to_text();
        assert!(text.contains("demo"));
        assert!(text.contains("end-to-end"));
        // The stage mirrored its latency into the registry histogram.
        assert!(snap
            .registry
            .histogram("runtime.stage.demo.ns")
            .is_some_and(|h| h.count() >= 2));
        assert!(text.contains("registry:"));
        let json = snap.to_json().to_pretty();
        let parsed = biscatter_core::json::parse(&json).expect("snapshot JSON parses");
        assert_eq!(
            parsed.get("frames_completed").and_then(Value::as_f64),
            Some(2.0)
        );
        assert_eq!(
            parsed
                .get("stages")
                .and_then(Value::as_array)
                .map(|a| a.len()),
            Some(1)
        );
        assert!(parsed
            .get("registry")
            .and_then(|r| r.get("histograms"))
            .is_some());
    }
}
