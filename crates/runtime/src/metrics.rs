//! Per-stage runtime metrics: frame counters, queue congestion, and
//! log-bucketed latency histograms with percentile estimation.
//!
//! Counters are lock-free (`AtomicU64` with relaxed ordering — they are
//! statistics, not synchronization), so recording from worker threads costs a
//! few atomic adds per frame. A [`MetricsSnapshot`] is an immutable copy taken
//! after (or during) a run, exportable as aligned text or JSON via
//! [`biscatter_core::json`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use biscatter_core::json::Value;

/// Number of power-of-two latency buckets. Bucket `i` counts samples with
/// `ns < 2^i` (and `>= 2^(i-1)` for `i > 0`); 48 buckets span ~78 hours.
const BUCKETS: usize = 48;

/// Concurrent log-bucketed histogram of durations.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

fn bucket_index(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl LatencyHistogram {
    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Copies the histogram into an immutable [`LatencySnapshot`].
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct LatencySnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl LatencySnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency over all samples.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns / self.count)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Estimated latency at quantile `q` in `[0, 1]`, resolved to the upper
    /// edge of the log bucket containing that rank (≤ 2x overestimate).
    pub fn percentile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                let upper_ns = if i >= 63 { u64::MAX } else { 1u64 << i };
                return Duration::from_nanos(upper_ns.min(self.max_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }
}

/// Live counters for one pipeline stage.
pub struct StageMetrics {
    name: &'static str,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    latency: LatencyHistogram,
}

impl StageMetrics {
    pub fn new(name: &'static str) -> Self {
        StageMetrics {
            name,
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one frame flowing through the stage in `took` processing time.
    pub fn record_frame(&self, took: Duration) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.latency.record(took);
    }

    /// Records a frame that entered the stage but was not emitted
    /// (e.g. the downstream queue was closed).
    pub fn record_swallowed(&self, took: Duration) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.latency.record(took);
    }

    /// Copies the counters into an immutable [`StageSnapshot`], attaching the
    /// stage's input-queue congestion stats.
    pub fn snapshot(&self, queue_high_water: usize, queue_drops: u64) -> StageSnapshot {
        StageSnapshot {
            name: self.name,
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            queue_high_water,
            queue_drops,
            latency: self.latency.snapshot(),
        }
    }
}

/// Immutable per-stage statistics inside a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    pub name: &'static str,
    pub frames_in: u64,
    pub frames_out: u64,
    /// Deepest the stage's *input* queue ever got.
    pub queue_high_water: usize,
    /// Frames evicted from the stage's input queue under drop-oldest.
    pub queue_drops: u64,
    pub latency: LatencySnapshot,
}

/// Full metrics picture of one pipeline run.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub stages: Vec<StageSnapshot>,
    /// End-to-end latency (job enqueued -> outcome at sink).
    pub end_to_end: LatencySnapshot,
    /// Frames that reached the sink.
    pub frames_completed: u64,
    /// Total frames dropped across all queues.
    pub total_drops: u64,
    pub elapsed: Duration,
}

impl MetricsSnapshot {
    /// Completed frames per wall-clock second.
    pub fn frames_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.frames_completed as f64 / self.elapsed.as_secs_f64()
    }

    /// Renders an aligned human-readable table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pipeline: {} frames in {:.3} s ({:.1} frames/s), {} dropped\n",
            self.frames_completed,
            self.elapsed.as_secs_f64(),
            self.frames_per_sec(),
            self.total_drops,
        ));
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
            "stage", "in", "out", "hiwat", "drops", "p50", "p90", "p99", "max"
        ));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<12} {:>8} {:>8} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
                s.name,
                s.frames_in,
                s.frames_out,
                s.queue_high_water,
                s.queue_drops,
                fmt_dur(s.latency.percentile(0.50)),
                fmt_dur(s.latency.percentile(0.90)),
                fmt_dur(s.latency.percentile(0.99)),
                fmt_dur(s.latency.max()),
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
            "end-to-end",
            self.end_to_end.count(),
            self.end_to_end.count(),
            "-",
            "-",
            fmt_dur(self.end_to_end.percentile(0.50)),
            fmt_dur(self.end_to_end.percentile(0.90)),
            fmt_dur(self.end_to_end.percentile(0.99)),
            fmt_dur(self.end_to_end.max()),
        ));
        out
    }

    /// Renders the snapshot as a JSON value.
    pub fn to_json(&self) -> Value {
        let mut root = std::collections::BTreeMap::new();
        root.insert(
            "frames_completed".to_string(),
            Value::Number(self.frames_completed as f64),
        );
        root.insert(
            "total_drops".to_string(),
            Value::Number(self.total_drops as f64),
        );
        root.insert(
            "elapsed_s".to_string(),
            Value::Number(self.elapsed.as_secs_f64()),
        );
        root.insert(
            "frames_per_sec".to_string(),
            Value::Number(self.frames_per_sec()),
        );
        root.insert(
            "stages".to_string(),
            Value::Array(
                self.stages
                    .iter()
                    .map(|s| {
                        let mut m = latency_json(&s.latency);
                        m.insert("name".to_string(), Value::String(s.name.to_string()));
                        m.insert("frames_in".to_string(), Value::Number(s.frames_in as f64));
                        m.insert("frames_out".to_string(), Value::Number(s.frames_out as f64));
                        m.insert(
                            "queue_high_water".to_string(),
                            Value::Number(s.queue_high_water as f64),
                        );
                        m.insert(
                            "queue_drops".to_string(),
                            Value::Number(s.queue_drops as f64),
                        );
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
        root.insert(
            "end_to_end".to_string(),
            Value::Object(latency_json(&self.end_to_end)),
        );
        Value::Object(root)
    }
}

fn latency_json(l: &LatencySnapshot) -> std::collections::BTreeMap<String, Value> {
    let mut m = std::collections::BTreeMap::new();
    m.insert("count".to_string(), Value::Number(l.count() as f64));
    m.insert(
        "mean_us".to_string(),
        Value::Number(l.mean().as_secs_f64() * 1e6),
    );
    m.insert(
        "p50_us".to_string(),
        Value::Number(l.percentile(0.50).as_secs_f64() * 1e6),
    );
    m.insert(
        "p90_us".to_string(),
        Value::Number(l.percentile(0.90).as_secs_f64() * 1e6),
    );
    m.insert(
        "p99_us".to_string(),
        Value::Number(l.percentile(0.99).as_secs_f64() * 1e6),
    );
    m.insert(
        "max_us".to_string(),
        Value::Number(l.max().as_secs_f64() * 1e6),
    );
    m
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{}ns", ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(0.99), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
    }

    #[test]
    fn percentile_brackets_samples() {
        let h = LatencyHistogram::default();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        // p50 falls in the bucket holding 20-40us samples; log buckets may
        // overestimate by up to 2x but never land above the max sample.
        let p50 = s.percentile(0.50);
        assert!(p50 >= Duration::from_micros(20) && p50 <= Duration::from_micros(128));
        assert_eq!(s.max(), Duration::from_micros(1000));
        assert!(s.percentile(1.0) <= s.max());
        assert_eq!(s.mean(), Duration::from_micros(220));
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0;
        for ns in [0u64, 1, 2, 3, 1000, 1_000_000, u64::MAX] {
            let b = bucket_index(ns);
            assert!(b >= last);
            assert!(b < BUCKETS);
            last = b;
        }
    }

    #[test]
    fn snapshot_renders_text_and_json() {
        let stage = StageMetrics::new("demo");
        stage.record_frame(Duration::from_micros(150));
        stage.record_frame(Duration::from_micros(250));
        let e2e = LatencyHistogram::default();
        e2e.record(Duration::from_millis(2));
        let snap = MetricsSnapshot {
            stages: vec![stage.snapshot(1, 0)],
            end_to_end: e2e.snapshot(),
            frames_completed: 2,
            total_drops: 0,
            elapsed: Duration::from_millis(10),
        };
        let text = snap.to_text();
        assert!(text.contains("demo"));
        assert!(text.contains("end-to-end"));
        let json = snap.to_json().to_pretty();
        let parsed = biscatter_core::json::parse(&json).expect("snapshot JSON parses");
        assert_eq!(
            parsed.get("frames_completed").and_then(Value::as_f64),
            Some(2.0)
        );
        assert_eq!(
            parsed
                .get("stages")
                .and_then(Value::as_array)
                .map(|a| a.len()),
            Some(1)
        );
    }
}
