//! The staged streaming pipeline.
//!
//! Frame jobs flow through five stages, each on its own worker pool, joined
//! by bounded queues:
//!
//! ```text
//! source -> [synthesize] -> [dechirp] -> [align] -> [doppler] -> [detect] -> sink
//! ```
//!
//! Every queue applies the configured [`Backpressure`] policy, so a slow
//! stage either throttles its upstream (lossless `Block`) or sheds the
//! oldest in-flight frames (`DropOldest`, counted per queue).
//!
//! Shutdown is graceful by construction: the source closes the first queue
//! after the last job, and each pool's final worker closes its downstream
//! queue when its input drains — the close ripples to the sink with no frame
//! abandoned mid-flight.
//!
//! Because every job carries its own seed (see [`crate::source`]), outcomes
//! are bit-identical to the one-shot [`run_isac_frame`] path regardless of
//! worker count, queue sizing, or scheduling — under `Block`, the streaming
//! and serial paths are interchangeable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use biscatter_compute::ComputePool;
use biscatter_core::downlink::FrameOutcome;
use biscatter_core::dsp::arena::Lease;
use biscatter_core::isac::precision::{run_isac_frame_tiered_times, PrecisionTier};
use biscatter_core::isac::{
    align_stage_into, dechirp_stage_into, detect_stage_multi, detect_stage_with,
    doppler_stage_into, run_cold_start_frame_with_times, run_isac_frame, synthesize_frame,
    warm_dsp_plans, AlignedPair, ColdStartOutcome, FrameArena, IsacOutcome, SynthesizedFrame,
};
use biscatter_core::system::BiScatterSystem;
use biscatter_radar::receiver::doppler::RangeDopplerMap;
use biscatter_radar::receiver::multitag::{MultiTagScratch, TagBank};
use biscatter_rf::frame::ChirpTrain;
use biscatter_rf::slab::SampleSlab;

use biscatter_obs::metrics::{Counter, Histogram};
use biscatter_obs::recorder::{self, FlightRecorder, FrameRecord, StageNanos};
use biscatter_obs::trace;

use crate::metrics::{LatencyHistogram, MetricsSnapshot, StageMetrics};
use crate::queue::{Backpressure, BoundedQueue};
use crate::source::FrameJob;

/// Worker-thread count for each stage.
#[derive(Debug, Clone, Copy)]
pub struct StageWorkers {
    pub synthesize: usize,
    pub dechirp: usize,
    pub align: usize,
    pub doppler: usize,
    pub detect: usize,
}

impl StageWorkers {
    /// The same number of workers on every stage.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "stages need at least one worker");
        StageWorkers {
            synthesize: n,
            dechirp: n,
            align: n,
            doppler: n,
            detect: n,
        }
    }

    /// Sizes pools from the machine's parallelism. Frame synthesis dominates
    /// per-frame cost (the tag-side envelope capture + symbol decisions),
    /// with align a distant second, so those stages get the extra workers;
    /// the cheap stages (doppler, detect) stay single-threaded.
    pub fn auto() -> Self {
        let cores = thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 8 {
            StageWorkers {
                synthesize: 4,
                dechirp: 2,
                align: 2,
                doppler: 1,
                detect: 1,
            }
        } else if cores >= 4 {
            StageWorkers {
                synthesize: 2,
                dechirp: 1,
                align: 2,
                doppler: 1,
                detect: 1,
            }
        } else {
            StageWorkers::uniform(1)
        }
    }

    /// Total worker threads across all stages.
    pub fn total(&self) -> usize {
        self.synthesize + self.dechirp + self.align + self.doppler + self.detect
    }
}

/// Streaming runtime configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Capacity of every inter-stage queue.
    pub queue_capacity: usize,
    /// What producers do when a queue is full.
    pub policy: Backpressure,
    /// Worker pool sizes.
    pub workers: StageWorkers,
    /// Threads of the shared intra-frame compute pool: the DSP stages fan
    /// chirps / range columns of a *single* frame across this pool. Defaults
    /// to 1 (parallelism comes from frame-level pipelining); raise it when
    /// frames are large and cores outnumber the stage workers.
    pub intra_frame_threads: usize,
    /// Numeric tier for the inline frame path ([`Cell::process`], what fleet
    /// shards call per frame): `F64` is the oracle with bit-identity
    /// guarantees, `F32` the validated fast tier. The staged streaming
    /// pipeline ([`Cell::run_streaming`]) always runs the f64 oracle — its
    /// envelopes carry f64 leases.
    pub precision: PrecisionTier,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            queue_capacity: 8,
            policy: Backpressure::Block,
            workers: StageWorkers::auto(),
            intra_frame_threads: 1,
            precision: PrecisionTier::F64,
        }
    }
}

/// Everything a streaming run produced.
pub struct RunReport {
    /// `(frame id, outcome)` pairs, restored to frame-id order at the sink.
    pub outcomes: Vec<(u64, IsacOutcome)>,
    /// Per-stage and end-to-end metrics.
    pub metrics: MetricsSnapshot,
}

// Inter-stage envelopes. Each carries the job (for scenario/seed/id), the
// enqueue timestamp (for end-to-end latency), and exactly the data the next
// stage needs. The bulk payloads are arena `Lease`s, not owned buffers:
// when an envelope is dropped — at the stage that no longer needs its data,
// or mid-queue under `DropOldest` — the buffers return to the shared
// [`FrameArena`] and the next frame reuses them, which is what keeps queue
// memory bounded *and* steady-state frames allocation-free.
struct EnvJob {
    job: FrameJob,
    born: Instant,
}
struct EnvSynth {
    job: FrameJob,
    born: Instant,
    synth: SynthesizedFrame,
    stages: StageNanos,
}
struct EnvIf {
    job: FrameJob,
    born: Instant,
    train: ChirpTrain,
    downlink: FrameOutcome,
    if_data: Lease<SampleSlab>,
    stages: StageNanos,
}
struct EnvAligned {
    job: FrameJob,
    born: Instant,
    downlink: FrameOutcome,
    pair: Lease<AlignedPair>,
    stages: StageNanos,
}
struct EnvMapped {
    job: FrameJob,
    born: Instant,
    downlink: FrameOutcome,
    pair: Lease<AlignedPair>,
    map: Lease<RangeDopplerMap>,
    stages: StageNanos,
}
struct EnvDone {
    id: u64,
    born: Instant,
    outcome: IsacOutcome,
    stages: StageNanos,
}

/// Spawns `workers` threads that drain `input` through `f` into `output`.
/// Each worker runs `init` once before its drain loop — the FFT-heavy
/// stages use it to warm the thread-local plan cache
/// ([`biscatter_core::isac::warm_dsp_plans`]) so plan construction is paid
/// at spawn, not inside the first frame's latency. The last worker to
/// observe the drained input closes `output`, propagating shutdown
/// downstream.
fn spawn_pool<'s, I, O, F, G>(
    scope: &'s thread::Scope<'s, '_>,
    workers: usize,
    input: &Arc<BoundedQueue<I>>,
    output: &Arc<BoundedQueue<O>>,
    metrics: &Arc<StageMetrics>,
    init: G,
    f: F,
) where
    I: Send + 's,
    O: Send + 's,
    F: Fn(I) -> O + Send + Sync + 's,
    G: Fn() + Send + Sync + 's,
{
    assert!(workers > 0, "stages need at least one worker");
    let f = Arc::new(f);
    let init = Arc::new(init);
    let alive = Arc::new(AtomicUsize::new(workers));
    for _ in 0..workers {
        let input = Arc::clone(input);
        let output = Arc::clone(output);
        let metrics = Arc::clone(metrics);
        let f = Arc::clone(&f);
        let init = Arc::clone(&init);
        let alive = Arc::clone(&alive);
        scope.spawn(move || {
            init();
            while let Some(item) = input.pop() {
                let t0 = Instant::now();
                let out = f(item);
                let took = t0.elapsed();
                if output.push(out) {
                    metrics.record_frame(took);
                } else {
                    metrics.record_swallowed(took);
                }
            }
            if alive.fetch_sub(1, Ordering::AcqRel) == 1 {
                output.close();
            }
        });
    }
}

/// A radar cell as a value: one system, one runtime configuration, one
/// frame arena, and a metric scope.
///
/// PRs 1–5 assumed a single pipeline per process; the fleet layer
/// (`biscatter-fleet`) instead instantiates many cells and schedules them
/// across worker shards, so everything that used to be implicitly
/// process-global — arena pools, queue gauges, stage histograms — is scoped
/// under the cell's `cell<id>.` metric prefix.
///
/// Two entry points share the cell's arena and scope:
/// * [`Cell::run_streaming`] — the full staged pipeline (source → five
///   worker pools → sink), the same machinery as the free [`run_streaming`]
///   but with per-cell metric names.
/// * [`Cell::process`] — one frame, inline on the calling thread through
///   the zero-allocation arena path
///   ([`biscatter_core::isac::run_isac_frame_with`], or the f32 fast tier
///   when the config selects it); this is what a fleet shard calls when it
///   multiplexes many cells onto one thread.
///
/// On the default `F64` tier both paths are bit-identical to the one-shot
/// [`run_isac_frame`] because every job carries its own seed.
pub struct Cell {
    id: usize,
    prefix: String,
    sys: BiScatterSystem,
    cfg: RuntimeConfig,
    arena: FrameArena,
    frames: Counter,
    frame_ns: Histogram,
    /// Always-on flight recorder ring (shared with the scrape server through
    /// the global `recorder` table).
    recorder: Arc<FlightRecorder>,
    /// Cached handles to every cumulative drop counter charged to this cell
    /// (admission intake + the six stage queues), so capture-time totals
    /// are atomic loads — no registry lookups on the frame path.
    drop_counters: Vec<Counter>,
}

impl Cell {
    /// A cell whose metrics live under `cell<id>.` (e.g.
    /// `cell3.runtime.queue.detect.depth`, `cell3.arena.isac.maps.*`).
    pub fn new(id: usize, sys: BiScatterSystem, cfg: RuntimeConfig) -> Self {
        Self::with_prefix(id, format!("cell{id}."), sys, cfg)
    }

    /// A cell with the legacy unscoped metric names — what the free
    /// [`run_streaming`] uses, and what single-pipeline processes expect.
    pub fn standalone(sys: BiScatterSystem, cfg: RuntimeConfig) -> Self {
        Self::with_prefix(0, String::new(), sys, cfg)
    }

    fn with_prefix(id: usize, prefix: String, sys: BiScatterSystem, cfg: RuntimeConfig) -> Self {
        let r = biscatter_obs::registry();
        let frames = r.counter(&format!("{prefix}runtime.frames"));
        let frame_ns = r.histogram(&format!("{prefix}runtime.frame.ns"));
        let arena = FrameArena::scoped(&prefix);
        let drop_counters = [
            "fleet.intake.drops",
            "fleet.intake.rejected",
            "runtime.queue.synthesize.drops",
            "runtime.queue.dechirp.drops",
            "runtime.queue.align.drops",
            "runtime.queue.doppler.drops",
            "runtime.queue.detect.drops",
            "runtime.queue.sink.drops",
        ]
        .iter()
        .map(|name| r.counter(&format!("{prefix}{name}")))
        .collect();
        Cell {
            recorder: recorder::for_cell(id as u32),
            id,
            prefix,
            sys,
            cfg,
            arena,
            frames,
            frame_ns,
            drop_counters,
        }
    }

    /// The cell id this value was built with.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The metric-name prefix (`"cell<id>."`, or empty for standalone).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The radar/tag system this cell simulates and processes.
    pub fn system(&self) -> &BiScatterSystem {
        &self.sys
    }

    /// The runtime configuration (queue sizing, backpressure, workers).
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The cell's frame arena — benchmarks use this to assert the free
    /// lists recycle (zero steady-state allocation).
    pub fn arena(&self) -> &FrameArena {
        &self.arena
    }

    /// The cell's flight recorder (the same ring
    /// `biscatter_obs::recorder::for_cell(id)` resolves).
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Cumulative queue + admission drops charged to this cell right now —
    /// a sum of atomic loads over the cached counter handles.
    fn queue_drops_now(&self) -> u64 {
        self.drop_counters.iter().map(Counter::get).sum()
    }

    /// Captures one frame into the flight recorder. Allocation-free: the
    /// record is `Copy` and the ring was preallocated, so the zero-alloc
    /// audits run with this in the measuring window.
    fn record_frame(
        &self,
        frame_id: u64,
        total_ns: u64,
        stages: StageNanos,
        pslr_db: f64,
        outcome: &IsacOutcome,
    ) {
        let snr_db = outcome.location.as_ref().map_or(f64::NAN, |l| l.snr_db);
        let decoded_bits = if outcome.tags.is_empty() {
            outcome.uplink_bits.as_ref().map_or(0, |b| b.len())
        } else {
            outcome
                .tags
                .iter()
                .map(|t| t.uplink.as_ref().map_or(0, |u| u.bits.len()))
                .sum()
        } as u32;
        self.recorder.record(FrameRecord {
            frame_id,
            cell_id: self.id as u32,
            t_ns: recorder::now_ns(),
            total_ns,
            stages,
            snr_db,
            pslr_db,
            decoded_bits,
            cfar_detections: outcome.detections.len() as u32,
            queue_drops: self.queue_drops_now(),
        });
    }

    /// Runs one frame inline on the calling thread through the cell's arena
    /// (allocation-free after warm-up) and records it in the cell's frame
    /// counter and latency histogram. On the default `F64` tier the outcome
    /// is bit-identical to [`run_isac_frame`]; the `F32` tier trades the
    /// low bits of the hot path for speed (see
    /// [`biscatter_core::isac::precision`]).
    pub fn process(&self, pool: &ComputePool, job: &FrameJob) -> IsacOutcome {
        let _fs = trace::frame_scope(job.id);
        let _span = biscatter_obs::span!("runtime.frame");
        let t0 = Instant::now();
        let mut stages = StageNanos::default();
        let outcome = run_isac_frame_tiered_times(
            pool,
            &self.sys,
            &job.scenario,
            &job.payload,
            job.seed,
            &self.arena,
            self.cfg.precision,
            &mut stages,
        );
        let total = t0.elapsed();
        self.frames.inc();
        self.frame_ns.record(total);
        self.record_frame(job.id, total.as_nanos() as u64, stages, f64::NAN, &outcome);
        outcome
    }

    /// Runs one cold-start frame inline: acquisition stage 0 (the correlator
    /// bank over the raw dwell, leasing its capture/bank/slab buffers from
    /// the cell's arena) and then — only if the tag passed the PSLR gate —
    /// the standard aligned frame. Jobs whose scenarios carry no
    /// [`biscatter_core::isac::ColdStartSpec`] behave like [`Cell::process`]
    /// with the outcome wrapped in a [`ColdStartOutcome`]. Recorded in the
    /// same frame counter/latency histogram as aligned frames.
    pub fn process_cold_start(&self, pool: &ComputePool, job: &FrameJob) -> ColdStartOutcome {
        let _fs = trace::frame_scope(job.id);
        let _span = biscatter_obs::span!("runtime.frame");
        let t0 = Instant::now();
        let mut stages = StageNanos::default();
        let outcome = run_cold_start_frame_with_times(
            pool,
            &self.sys,
            &job.scenario,
            &job.payload,
            job.seed,
            &self.arena,
            &mut stages,
        );
        let total = t0.elapsed();
        self.frames.inc();
        self.frame_ns.record(total);
        let pslr_db = outcome.acquisition.as_ref().map_or(f64::NAN, |a| a.pslr_db);
        match &outcome.frame {
            Some(frame) => {
                self.record_frame(job.id, total.as_nanos() as u64, stages, pslr_db, frame)
            }
            None => {
                // Rejected acquisition: no aligned frame ran, but the dwell
                // still cost time and belongs in the flight record.
                self.recorder.record(FrameRecord {
                    frame_id: job.id,
                    cell_id: self.id as u32,
                    t_ns: recorder::now_ns(),
                    total_ns: total.as_nanos() as u64,
                    stages,
                    snr_db: f64::NAN,
                    pslr_db,
                    decoded_bits: 0,
                    cfar_detections: 0,
                    queue_drops: self.queue_drops_now(),
                });
            }
        }
        outcome
    }

    /// Streams `jobs` through the staged pipeline and collects every
    /// outcome. The calling thread acts as the sink; worker threads are
    /// scoped, so the method returns only after every stage has shut down.
    pub fn run_streaming(&self, jobs: Vec<FrameJob>) -> RunReport {
        let sys = &self.sys;
        let cfg = &self.cfg;
        let p = self.prefix.as_str();
        let n_jobs = jobs.len();
        let cap = cfg.queue_capacity;
        // One compute pool shared by the DSP stages for intra-frame fan-out.
        // Its background workers warm their thread-local FFT planners at
        // spawn, the same `warm_dsp_plans` hook the stage workers run in
        // `spawn_pool`.
        let warm_sys = sys.clone();
        let intra =
            ComputePool::with_init(cfg.intra_frame_threads, move || warm_dsp_plans(&warm_sys));
        let intra = &intra;
        // Recyclable buffers shared by all stage workers; leases travel
        // inside the envelopes and return here when dropped.
        let arena = &self.arena;
        // Queues are named after their consuming stage, so the registry shows
        // each edge's live depth / high-water / drops as
        // `<prefix>runtime.queue.<stage>.*`.
        let q = |stage: &str| format!("{p}runtime.queue.{stage}");
        let q_synth = Arc::new(BoundedQueue::<EnvJob>::named_at(
            cap,
            cfg.policy,
            &q("synthesize"),
        ));
        let q_dechirp = Arc::new(BoundedQueue::<EnvSynth>::named_at(
            cap,
            cfg.policy,
            &q("dechirp"),
        ));
        let q_align = Arc::new(BoundedQueue::<EnvIf>::named_at(
            cap,
            cfg.policy,
            &q("align"),
        ));
        let q_doppler = Arc::new(BoundedQueue::<EnvAligned>::named_at(
            cap,
            cfg.policy,
            &q("doppler"),
        ));
        let q_detect = Arc::new(BoundedQueue::<EnvMapped>::named_at(
            cap,
            cfg.policy,
            &q("detect"),
        ));
        let q_sink = Arc::new(BoundedQueue::<EnvDone>::named_at(
            cap,
            cfg.policy,
            &q("sink"),
        ));

        let m_synth = Arc::new(StageMetrics::scoped(p, "synthesize"));
        let m_dechirp = Arc::new(StageMetrics::scoped(p, "dechirp"));
        let m_align = Arc::new(StageMetrics::scoped(p, "align"));
        let m_doppler = Arc::new(StageMetrics::scoped(p, "doppler"));
        let m_detect = Arc::new(StageMetrics::scoped(p, "detect"));
        let e2e = LatencyHistogram::default();

        // `BISCATTER_TRACE=<path>` turns span recording on for the run and
        // dumps a Perfetto-loadable Chrome trace (plus the registry
        // snapshot) there at shutdown. Tracing that was already enabled
        // stays enabled either way.
        let trace_path = std::env::var("BISCATTER_TRACE").ok();
        if trace_path.is_some() {
            trace::set_enabled(true);
        }
        // `BISCATTER_METRICS_ADDR=<host:port>` starts the live scrape server
        // (idempotent across cells and runs — only the first call binds).
        biscatter_obs::serve::spawn_from_env();

        let t0 = Instant::now();
        let mut outcomes: Vec<(u64, IsacOutcome)> = thread::scope(|scope| {
            {
                let q = Arc::clone(&q_synth);
                scope.spawn(move || {
                    for job in jobs {
                        let _fs = trace::frame_scope(job.id);
                        let _span = biscatter_obs::span!("runtime.source");
                        let env = EnvJob {
                            born: Instant::now(),
                            job,
                        };
                        if !q.push(env) {
                            break;
                        }
                    }
                    q.close();
                });
            }

            spawn_pool(
                scope,
                cfg.workers.synthesize,
                &q_synth,
                &q_dechirp,
                &m_synth,
                || {},
                |e: EnvJob| {
                    let _fs = trace::frame_scope(e.job.id);
                    let t = Instant::now();
                    let synth = synthesize_frame(sys, &e.job.scenario, &e.job.payload, e.job.seed);
                    let stages = StageNanos {
                        synthesize: t.elapsed().as_nanos() as u64,
                        ..StageNanos::default()
                    };
                    EnvSynth {
                        job: e.job,
                        born: e.born,
                        synth,
                        stages,
                    }
                },
            );
            spawn_pool(
                scope,
                cfg.workers.dechirp,
                &q_dechirp,
                &q_align,
                &m_dechirp,
                || {},
                {
                    let arena = arena.clone();
                    move |e: EnvSynth| {
                        let _fs = trace::frame_scope(e.job.id);
                        let t = Instant::now();
                        let mut if_data = arena.if_slabs.take_or(SampleSlab::new);
                        dechirp_stage_into(
                            intra,
                            sys,
                            &e.synth.train,
                            &e.synth.scene,
                            e.job.seed,
                            &mut if_data,
                        );
                        let mut stages = e.stages;
                        stages.dechirp = t.elapsed().as_nanos() as u64;
                        EnvIf {
                            job: e.job,
                            born: e.born,
                            train: e.synth.train,
                            downlink: e.synth.downlink,
                            if_data,
                            stages,
                        }
                    }
                },
            );
            spawn_pool(
                scope,
                cfg.workers.align,
                &q_align,
                &q_doppler,
                &m_align,
                || warm_dsp_plans(sys),
                {
                    let arena = arena.clone();
                    move |e: EnvIf| {
                        let _fs = trace::frame_scope(e.job.id);
                        let t = Instant::now();
                        let mut pair = arena.aligned.take_or(AlignedPair::default);
                        align_stage_into(intra, sys, &e.train, &*e.if_data, &mut pair);
                        // `e.if_data` drops here: the slab returns to the arena.
                        let mut stages = e.stages;
                        stages.align = t.elapsed().as_nanos() as u64;
                        EnvAligned {
                            job: e.job,
                            born: e.born,
                            downlink: e.downlink,
                            pair,
                            stages,
                        }
                    }
                },
            );
            spawn_pool(
                scope,
                cfg.workers.doppler,
                &q_doppler,
                &q_detect,
                &m_doppler,
                || warm_dsp_plans(sys),
                {
                    let arena = arena.clone();
                    move |e: EnvAligned| {
                        let _fs = trace::frame_scope(e.job.id);
                        let t = Instant::now();
                        let mut map = arena.maps.take_or(RangeDopplerMap::default);
                        doppler_stage_into(intra, &e.pair, &mut map);
                        let mut stages = e.stages;
                        stages.doppler = t.elapsed().as_nanos() as u64;
                        EnvMapped {
                            job: e.job,
                            born: e.born,
                            downlink: e.downlink,
                            pair: e.pair,
                            map,
                            stages,
                        }
                    }
                },
            );
            spawn_pool(
                scope,
                cfg.workers.detect,
                &q_detect,
                &q_sink,
                &m_detect,
                || warm_dsp_plans(sys),
                {
                    let arena = arena.clone();
                    move |e: EnvMapped| {
                        let _fs = trace::frame_scope(e.job.id);
                        let t = Instant::now();
                        let mut mean_power = arena.scratch.take_or(Vec::new);
                        let outcome = if e.job.scenario.extra_tags.is_empty() {
                            detect_stage_with(
                                &e.job.scenario,
                                &e.pair,
                                &e.map,
                                e.downlink,
                                &mut mean_power,
                            )
                        } else {
                            // Multi-tag frames go through the batched engine. The
                            // bank lease keeps its cached per-tag templates when
                            // it cycles back to a frame with the same tag set.
                            let mut bank = arena.banks.take_or(TagBank::default);
                            let mut scratch = arena.multitag.take_or(MultiTagScratch::default);
                            detect_stage_multi(
                                intra,
                                &e.job.scenario,
                                &e.pair,
                                &e.map,
                                e.downlink,
                                &mut bank,
                                &mut scratch,
                                &mut mean_power,
                            )
                        };
                        // Pair, map, and scratch leases drop here — recycled.
                        let mut stages = e.stages;
                        stages.detect = t.elapsed().as_nanos() as u64;
                        EnvDone {
                            id: e.job.id,
                            born: e.born,
                            outcome,
                            stages,
                        }
                    }
                },
            );

            // The caller's thread is the sink: it restores frame-id order
            // after the unordered worker pools.
            let mut acc = Vec::with_capacity(n_jobs);
            while let Some(done) = q_sink.pop() {
                let _fs = trace::frame_scope(done.id);
                let _span = biscatter_obs::span!("runtime.sink");
                let lat = done.born.elapsed();
                e2e.record(lat);
                self.frames.inc();
                self.frame_ns.record(lat);
                self.record_frame(
                    done.id,
                    lat.as_nanos() as u64,
                    done.stages,
                    f64::NAN,
                    &done.outcome,
                );
                acc.push((done.id, done.outcome));
            }
            acc
        });
        let elapsed = t0.elapsed();
        outcomes.sort_by_key(|&(id, _)| id);

        let stages = vec![
            m_synth.snapshot(q_synth.high_water(), q_synth.drops()),
            m_dechirp.snapshot(q_dechirp.high_water(), q_dechirp.drops()),
            m_align.snapshot(q_align.high_water(), q_align.drops()),
            m_doppler.snapshot(q_doppler.high_water(), q_doppler.drops()),
            m_detect.snapshot(q_detect.high_water(), q_detect.drops()),
        ];
        let total_drops = stages.iter().map(|s| s.queue_drops).sum::<u64>() + q_sink.drops();
        let metrics = MetricsSnapshot {
            stages,
            end_to_end: e2e.snapshot(),
            frames_completed: outcomes.len() as u64,
            total_drops,
            elapsed,
            registry: biscatter_obs::registry().snapshot(),
        };
        if let Some(path) = trace_path {
            dump_trace(&path, &metrics);
        }
        RunReport { outcomes, metrics }
    }
}

/// Streams `jobs` through the staged pipeline with the legacy process-global
/// metric names and collects every outcome. Equivalent to
/// [`Cell::standalone`] followed by [`Cell::run_streaming`].
pub fn run_streaming(sys: &BiScatterSystem, jobs: Vec<FrameJob>, cfg: &RuntimeConfig) -> RunReport {
    Cell::standalone(sys.clone(), *cfg).run_streaming(jobs)
}

/// Writes the Perfetto trace for everything recorded so far (plus the
/// registry snapshot under the extra `"registry"` key, which trace viewers
/// ignore) to `path`. Re-entrant: spans accumulate across calls in a
/// process-wide collector, so repeated runs — or many cells dumping at
/// their own shutdown — each write a superset, never clobbering earlier
/// spans. Failures are reported, not fatal — telemetry must not take down a
/// run that already finished.
fn dump_trace(path: &str, metrics: &MetricsSnapshot) {
    match trace::export_accumulated(path, [("registry".to_string(), metrics.registry.to_json())]) {
        Ok(summary) => eprintln!(
            "BISCATTER_TRACE: wrote {} spans from {} threads to {path}",
            summary.spans, summary.threads,
        ),
        Err(err) => eprintln!("BISCATTER_TRACE: failed to write {path}: {err}"),
    }
}

/// Reference path: the same jobs, one at a time, on the calling thread via
/// the one-shot [`run_isac_frame`]. Used for parity tests and as the serial
/// baseline in the throughput benchmark.
pub fn run_serial(sys: &BiScatterSystem, jobs: &[FrameJob]) -> Vec<(u64, IsacOutcome)> {
    jobs.iter()
        .map(|j| (j.id, run_isac_frame(sys, &j.scenario, &j.payload, j.seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_totals() {
        assert_eq!(StageWorkers::uniform(2).total(), 10);
        assert!(StageWorkers::auto().total() >= 5);
    }
}
