//! ISAC transparency: communication must not disturb sensing (paper §3.3,
//! Figs. 7 & 16).
//!
//! A person walks through the radar's field of view while a BiScatter tag
//! sits on the wall. The radar runs frame after frame, every one of them
//! carrying a downlink packet. The demo tracks the walker with an α–β
//! tracker, localizes the tag, and decodes the downlink at the tag —
//! simultaneously — then repeats the run with IF correction disabled to
//! show the range-profile ambiguity CSSK would otherwise cause (Fig. 7a).
//!
//! Run with: `cargo run --release --example isac_sensing`

use biscatter_core::isac::{run_isac_frame, IsacScenario, MoverSpec};
use biscatter_core::radar::sensing::AlphaBetaTracker;
use biscatter_core::system::BiScatterSystem;

fn main() {
    let sys = BiScatterSystem::paper_9ghz();
    let tag_range = 2.5;
    let mod_freq = 16.0 / (sys.frame_chirps as f64 * sys.radar.t_period);
    let frame_time = sys.frame_chirps as f64 * sys.radar.t_period;
    println!(
        "ISAC transparency demo — {} frames of {:.1} ms each\n",
        12,
        frame_time * 1e3
    );
    println!(
        "{:>6}  {:>9}  {:>9}  {:>10}  {:>9}",
        "frame", "walker_m", "track_m", "tag_err_cm", "downlink"
    );

    // Frames are snapshots taken every 250 ms of wall-clock time.
    let snapshot_dt = 0.25;
    let mut tracker = AlphaBetaTracker::new(0.6, 0.2);
    let mut walker = 8.0; // starts far, walks toward the radar at 1.2 m/s
    let speed = -1.2;
    let mut downlink_ok = 0;
    let mut tag_errors = Vec::new();

    for frame in 0..12 {
        let mut scenario = IsacScenario::single_tag(tag_range, mod_freq).with_office_clutter();
        scenario.movers = vec![MoverSpec {
            range_m: walker,
            velocity_mps: speed,
            relative_amp: 9.0,
        }];
        let payload = [frame as u8, 0x5A, 0xC3];
        let out = run_isac_frame(&sys, &scenario, &payload, 9090 + frame as u64);

        // Track the walker: nearest detection to the prediction.
        let predicted = tracker.range();
        let measured = out
            .detections
            .iter()
            .map(|d| d.range_m)
            .filter(|r| (r - tag_range).abs() > 0.4) // ignore the tag itself
            .min_by(|a, b| {
                let pa = if frame == 0 { walker } else { predicted };
                (a - pa).abs().partial_cmp(&(b - pa).abs()).unwrap()
            });
        let track = match measured {
            Some(m) => tracker.update(m, snapshot_dt),
            None => tracker.range(),
        };

        let tag_err_cm = out
            .location
            .map(|l| (l.range_m - tag_range).abs() * 100.0)
            .unwrap_or(f64::NAN);
        if !tag_err_cm.is_nan() {
            tag_errors.push(tag_err_cm);
        }
        let dl = out.downlink.parsed && out.downlink.received == payload;
        downlink_ok += usize::from(dl);

        println!(
            "{:>6}  {:>9.2}  {:>9.2}  {:>10.1}  {:>9}",
            frame,
            walker,
            track,
            tag_err_cm,
            if dl { "ok" } else { "FAIL" }
        );
        walker += speed * snapshot_dt;
    }

    let mean_err = tag_errors.iter().sum::<f64>() / tag_errors.len().max(1) as f64;
    println!("\nsummary: downlink {downlink_ok}/12 frames, mean tag error {mean_err:.1} cm");
    println!("The walker was tracked, the tag was localized, and every frame carried data.");

    // The ablation: without IF correction the static tag smears across bins.
    let mut broken = sys.clone();
    broken.rx.if_correction = false;
    let scenario = IsacScenario::single_tag(tag_range, mod_freq);
    let out = run_isac_frame(&broken, &scenario, b"ABLATION", 777);
    match out.location {
        Some(l) => println!(
            "\nwithout IF correction the tag appears at {:.2} m — {:.1} m off (Fig. 7a).",
            l.range_m,
            (l.range_m - tag_range).abs()
        ),
        None => println!("\nwithout IF correction the tag is not even found (Fig. 7a)."),
    }
}
