//! Streaming ISAC runtime demo: 4 radars × 8 tags, 200 continuous frames.
//!
//! Streams the workload through the staged pipeline twice — once with
//! lossless blocking backpressure, once with drop-oldest shedding on tiny
//! queues — and prints per-stage metrics plus the JSON snapshot.
//!
//! ```sh
//! cargo run --release --example streaming_runtime
//! ```
//!
//! Set `BISCATTER_TRACE=<path>` to additionally record spans from every
//! thread (source, stage workers, intra-frame compute pool) and dump a
//! Perfetto-loadable Chrome trace — with the metric registry embedded under
//! a `"registry"` key — when the run shuts down:
//!
//! ```sh
//! BISCATTER_TRACE=/tmp/biscatter_trace.json \
//!     cargo run --release --example streaming_runtime
//! # then open the file at https://ui.perfetto.dev
//! ```

use biscatter_runtime::pipeline::{run_streaming, RuntimeConfig, StageWorkers};
use biscatter_runtime::queue::Backpressure;
use biscatter_runtime::source::{streaming_system, WorkloadSpec};

fn main() {
    let sys = streaming_system();
    if let Ok(path) = std::env::var("BISCATTER_TRACE") {
        println!("tracing enabled; Perfetto trace will be written to {path}");
    }
    let spec = WorkloadSpec::four_by_eight(200, 42);
    println!(
        "workload: {} radars x {} tags, {} frames (seed {})",
        spec.n_radars, spec.tags_per_radar, spec.n_frames, spec.base_seed
    );

    // Lossless run: blocking backpressure, bounded queues. Two intra-frame
    // threads so the shared compute pool's fork-join spans show up in the
    // trace alongside the stage spans.
    let cfg = RuntimeConfig {
        queue_capacity: 8,
        policy: Backpressure::Block,
        workers: StageWorkers::auto(),
        intra_frame_threads: 2,
        ..RuntimeConfig::default()
    };
    let report = run_streaming(&sys, spec.jobs(&sys), &cfg);

    let located = report
        .outcomes
        .iter()
        .filter(|(_, o)| o.location.is_some())
        .count();
    let decoded = report
        .outcomes
        .iter()
        .filter(|(_, o)| o.downlink.parsed)
        .count();
    println!(
        "\n=== blocking backpressure (queue capacity {}) ===",
        cfg.queue_capacity
    );
    println!(
        "downlink decoded {}/{}, tags located {}/{}",
        decoded,
        report.outcomes.len(),
        located,
        report.outcomes.len()
    );
    println!("{}", report.metrics.to_text());

    // Overload run: tiny queues with drop-oldest shedding.
    // (Also two intra-frame threads: each run dumps the trace at shutdown,
    // and the last dump wins, so the shed run must record the same span mix.)
    let lossy = RuntimeConfig {
        queue_capacity: 2,
        policy: Backpressure::DropOldest,
        workers: StageWorkers::uniform(1),
        intra_frame_threads: 2,
        ..RuntimeConfig::default()
    };
    let shed = run_streaming(&sys, WorkloadSpec::four_by_eight(60, 42).jobs(&sys), &lossy);
    println!("=== drop-oldest on capacity-2 queues (60 frames) ===");
    println!("{}", shed.metrics.to_text());

    println!("=== JSON snapshot (blocking run) ===");
    println!("{}", report.metrics.to_json().to_pretty());
}
