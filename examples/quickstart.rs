//! Quickstart: one radar, one tag, one integrated ISAC frame.
//!
//! Demonstrates the whole BiScatter loop in ~60 lines of user code:
//! the radar encodes a command into CSSK chirp slopes, the tag decodes it
//! from its envelope-detector beat tones and reconfigures itself, and the
//! same frame simultaneously localizes the tag and carries its uplink
//! beacon — all over a single commodity-FMCW waveform.
//!
//! Run with: `cargo run --release --example quickstart`

use biscatter_core::isac::{run_isac_frame, IsacScenario};
use biscatter_core::link::commands::{AddressedCommand, Command};
use biscatter_core::link::mac::{TagAddress, TagId};
use biscatter_core::rf::components::rf_switch::RfSwitch;
use biscatter_core::system::BiScatterSystem;
use biscatter_core::tag::decoder::DownlinkDecoder;
use biscatter_core::tag::demod::SymbolDecider;
use biscatter_core::tag::modulator::{Modulator, ModulatorConfig};
use biscatter_core::tag::tag::{Tag, TagAction};

fn main() {
    // The paper's 9 GHz setup: 1 GHz bandwidth, 45-inch delay-line
    // difference, 5-bit CSSK symbols.
    let sys = BiScatterSystem::paper_9ghz();
    println!("BiScatter quickstart");
    println!(
        "  radar: {} (B = {:.0} MHz, T_period = {:.0} µs)",
        sys.radar.name,
        sys.radar.bandwidth / 1e6,
        sys.radar.t_period * 1e6
    );
    println!(
        "  alphabet: {} slopes carrying {} bits/symbol ({:.1} kbps)",
        sys.alphabet.n_slopes(),
        sys.alphabet.bits_per_symbol,
        sys.alphabet.data_rate_bps(sys.radar.t_period) / 1e3
    );

    // A tag 4.2 m away, modulating at ~1 kHz.
    let tag_range = 4.2;
    let mod_freq = 16.0 / (128.0 * sys.radar.t_period);
    println!("  tag: {} m away, subcarrier {:.0} Hz", tag_range, mod_freq);
    println!(
        "  downlink SNR at that range: {:.1} dB",
        sys.downlink_snr_at(tag_range)
    );

    // The radar wants to retune the tag's subcarrier to 2.5 kHz.
    let command = AddressedCommand {
        to: TagAddress::Unicast(TagId(7)),
        command: Command::SetModulationFreq { freq_centihz: 25 },
    };
    let payload = command.encode().to_vec();

    // One integrated frame: downlink + uplink + sensing + localization.
    let scenario = IsacScenario::single_tag(tag_range, mod_freq).with_office_clutter();
    let outcome = run_isac_frame(&sys, &scenario, &payload, 42);

    // --- What the tag saw. ---
    println!("\n[tag] downlink decoded: {}", outcome.downlink.parsed);
    let mut tag = Tag::new(
        TagId(7),
        DownlinkDecoder::new(SymbolDecider::from_alphabet(
            &sys.alphabet,
            sys.front_end.pair.delta_t(),
            sys.front_end.adc.sample_rate_hz,
        )),
        Modulator::new(ModulatorConfig::default(), RfSwitch::adrf5144()).unwrap(),
    );
    let received =
        AddressedCommand::decode(&outcome.downlink.received).expect("tag parses the command");
    match tag.handle_command(received) {
        TagAction::Executed(cmd) => {
            println!("[tag] executed {:?}", cmd);
            println!(
                "[tag] new subcarrier: {:.0} Hz",
                tag.modulator.config.subcarrier_hz
            );
        }
        other => println!("[tag] action: {:?}", other),
    }

    // --- What the radar saw. ---
    match outcome.location {
        Some(loc) => println!(
            "\n[radar] tag localized at {:.3} m (truth {:.3} m, error {:.1} cm, {:.1} dB)",
            loc.range_m,
            tag_range,
            (loc.range_m - tag_range).abs() * 100.0,
            loc.snr_db
        ),
        None => println!("\n[radar] tag not found"),
    }
    println!("[radar] sensing detections (clutter map):");
    for d in outcome.detections.iter().take(5) {
        println!("    target at {:.2} m (power {:.2e})", d.range_m, d.power);
    }
    println!("\nAll of the above happened over ONE chirp train — that is BiScatter.");
}
