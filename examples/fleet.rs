//! Multi-cell fleet demo: 16 radar cells on 4 shards, roaming tags, one
//! merged fleet snapshot.
//!
//! Runs a deterministic mobility workload — 8 tags roaming 16 cells, each
//! handing off to the next cell every 3 ticks — then proves the fleet
//! contract on the spot:
//!
//! * per-cell outcomes are bit-identical to the one-shot serial path,
//! * every uplink session survives its handoffs with the oracle bit
//!   stream, and
//! * the per-cell metric scopes fold into one aggregate snapshot.
//!
//! ```sh
//! cargo run --release --example fleet
//! ```
//!
//! Set `BISCATTER_TRACE=<path>` to dump a Perfetto trace of the run
//! (fleet / runtime / ISAC / DSP / compute spans + the metric registry):
//!
//! ```sh
//! BISCATTER_TRACE=/tmp/biscatter_fleet.json cargo run --release --example fleet
//! ```
//!
//! Set `BISCATTER_METRICS_ADDR=<host:port>` to serve the live observability
//! plane (`/metrics`, `/health`, `/frames`, `/trace`) while the fleet runs,
//! and `BISCATTER_FLEET_REPEAT=<n>` to repeat the workload so an external
//! scraper has a live process to poll mid-run (CI does both):
//!
//! ```sh
//! BISCATTER_METRICS_ADDR=127.0.0.1:9100 BISCATTER_FLEET_REPEAT=50 \
//!     cargo run --release --example fleet
//! ```

use biscatter_core::isac::run_isac_frame;
use biscatter_fleet::{AdmissionPolicy, Fleet, FleetConfig};
use biscatter_runtime::source::{streaming_system, MobilitySpec};

fn main() {
    let sys = streaming_system();
    if let Ok(path) = std::env::var("BISCATTER_TRACE") {
        println!("tracing enabled; Perfetto trace will be written to {path}");
    }

    let spec = MobilitySpec {
        n_cells: 16,
        mobile_tags: 8,
        n_ticks: 24,
        dwell_ticks: 3,
        base_seed: 42,
    };
    let cfg = FleetConfig {
        n_cells: spec.n_cells,
        shards: 4,
        intake_quota: 8,
        admission: AdmissionPolicy::Block,
        ..FleetConfig::default()
    };
    println!(
        "fleet: {} cells on {} shards, {} roaming tags, {} ticks (seed {})",
        cfg.n_cells, cfg.shards, spec.mobile_tags, spec.n_ticks, spec.base_seed
    );

    // CI's obs-smoke job repeats the workload so the metrics server (see
    // `BISCATTER_METRICS_ADDR`) stays up long enough to be scraped mid-run.
    let repeat: u32 = std::env::var("BISCATTER_FLEET_REPEAT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);

    let fleet = Fleet::new(sys.clone(), cfg);
    for _ in 1..repeat {
        fleet.run(spec.jobs(&sys));
    }
    let jobs = spec.jobs(&sys);
    let report = fleet.run(jobs);
    println!(
        "processed {} frames in {:.3} s, {} handoffs, {} drops",
        report.frames_completed(),
        report.elapsed.as_secs_f64(),
        report.handoffs,
        report.admission_drops,
    );

    // Contract 1: every cell's outcomes are bit-identical to the one-shot
    // serial path (per-frame seeds make results scheduling-independent).
    let again = spec.jobs(&sys);
    let mut checked = 0usize;
    for cj in &again {
        let oracle = run_isac_frame(&sys, &cj.job.scenario, &cj.job.payload, cj.job.seed);
        let got = report.outcomes[cj.cell]
            .iter()
            .find(|(id, _)| *id == cj.job.id)
            .map(|(_, o)| o)
            .expect("frame missing from its cell's outcomes");
        assert_eq!(
            got, &oracle,
            "cell {} frame {} diverged",
            cj.cell, cj.job.id
        );
        checked += 1;
    }
    println!(
        "bit-identical to standalone: {checked}/{} frames",
        again.len()
    );

    // Contract 2: each roaming tag's session carries the oracle bit stream
    // through every handoff.
    for session in &report.sessions {
        let oracle: Vec<bool> = spec
            .oracle_jobs(&sys, session.tag)
            .iter()
            .flat_map(|j| {
                run_isac_frame(&sys, &j.scenario, &j.payload, j.seed)
                    .uplink_bits
                    .unwrap_or_default()
            })
            .collect();
        assert_eq!(
            session.bits, oracle,
            "tag {} session diverged from the single-cell oracle",
            session.tag
        );
        println!(
            "tag {}: {} bits across {} handoffs (owner now cell {})",
            session.tag,
            session.bits.len(),
            session.handoffs,
            session.owner
        );
    }

    // Contract 3: one merged snapshot covering all cells.
    println!("\n=== fleet snapshot ===");
    println!("{}", report.snapshot.to_text());
}
