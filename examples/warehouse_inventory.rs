//! Warehouse inventory: the paper's motivating scenario (§1, Fig. 1).
//!
//! A radar-equipped drone flies a warehouse aisle. Shelf-mounted BiScatter
//! tags carry asset records. The drone: (1) assigns each tag a unique
//! subcarrier frequency over the downlink broadcast, (2) localizes every tag
//! from a single frame by scanning the assigned subcarriers, and
//! (3) queries each tag's data register over the two-way link — all while
//! its radar keeps mapping the (cluttered) aisle.
//!
//! Run with: `cargo run --release --example warehouse_inventory`

use biscatter_core::dsp::signal::NoiseSource;
use biscatter_core::isac::{run_isac_frame, ClutterSpec, IsacScenario};
use biscatter_core::link::coding::{decode_bytes, encode_bytes};
use biscatter_core::link::mac::{ModFreqPlanner, TagId};
use biscatter_core::radar::receiver::uplink::UplinkScheme;
use biscatter_core::system::BiScatterSystem;

/// One deployed asset tag.
struct Asset {
    id: TagId,
    range_m: f64,
    azimuth_deg: f64,
    label: &'static str,
    record: Vec<u8>,
}

fn main() {
    let mut sys = BiScatterSystem::paper_9ghz();
    // Inventory frames are long (1280 chirps ≈ 154 ms) so a whole
    // Hamming(7,4)-coded uplink record fits in one frame at 4 ms/bit.
    sys.frame_chirps = 1280;
    println!("Warehouse inventory over BiScatter ({})\n", sys.radar.name);

    let assets = [
        Asset {
            id: TagId(1),
            range_m: 2.3,
            azimuth_deg: -20.0,
            label: "pallet A-12",
            record: vec![0xA1, 0x2C],
        },
        Asset {
            id: TagId(2),
            range_m: 4.8,
            azimuth_deg: 12.0,
            label: "crate B-07",
            record: vec![0xB0, 0x73],
        },
        Asset {
            id: TagId(3),
            range_m: 5.8,
            azimuth_deg: 28.0,
            label: "drum C-03",
            record: vec![0xC0, 0x35],
        },
    ];

    // Step 1: the drone's MAC layer assigns non-colliding subcarriers.
    // Spacing is in Doppler bins; with 768-chirp frames the bins are 10.9 Hz
    // apart, so a margin of 64 bins keeps the tags ~700 Hz apart and leaves
    // every subcarrier with several cycles per uplink bit.
    let mut planner = ModFreqPlanner::new(sys.frame_chirps, sys.radar.t_period, 64);
    planner.f_min_hz = 1000.0;
    println!(
        "subcarrier plan (Doppler-bin spaced, {} tag capacity):",
        planner.capacity()
    );
    let freqs: Vec<f64> = assets
        .iter()
        .map(|a| {
            let f = planner.assign(a.id).expect("capacity available");
            println!("  tag {:?} <- {:.0} Hz", a.id, f);
            f
        })
        .collect();

    // The shared aisle clutter (racking, floor bounce, far wall).
    let clutter = vec![
        ClutterSpec {
            range_m: 1.1,
            relative_amp: 10.0,
        },
        ClutterSpec {
            range_m: 3.6,
            relative_amp: 7.0,
        },
        ClutterSpec {
            range_m: 9.2,
            relative_amp: 14.0,
        },
    ];

    // Step 2+3: one polling frame per tag — downlink QueryData, localize,
    // and demodulate the uplink record.
    println!("\ninventory sweep:");
    let mut rng = NoiseSource::new(99);
    let mut found = 0;
    for (asset, &f_mod) in assets.iter().zip(&freqs) {
        let mut scenario = IsacScenario::single_tag(asset.range_m, f_mod);
        scenario.clutter = clutter.clone();
        // The tag answers QueryData with its Hamming(7,4)-coded record,
        // OOK on its subcarrier (single-bit uplink errors self-correct).
        let coded = encode_bytes(&asset.record);
        scenario.uplink_bits =
            biscatter_core::link::packet::UplinkFrame::new(coded.clone()).to_bits();
        scenario.uplink_scheme = UplinkScheme::Ook { freq_hz: f_mod };
        scenario.uplink_bit_duration_s = 32.0 * sys.radar.t_period;

        let seed = 7000 + (rng.uniform() * 1e6) as u64;
        let out = run_isac_frame(&sys, &scenario, b"QRY?", seed);

        // 2D fix from the drone's 2-element RX array (extension module).
        let aoa = {
            use biscatter_core::radar::receiver::align_frame;
            use biscatter_core::radar::receiver::aoa::locate_tag_2d;
            use biscatter_core::rf::chirp::Chirp;
            use biscatter_core::rf::frame::ChirpTrain;
            use biscatter_core::rf::if_gen::IfReceiver;
            use biscatter_core::rf::scene::{Scatterer, Scene};
            let az = asset.azimuth_deg.to_radians();
            let mut scene2 =
                Scene::new().with(Scatterer::tag(asset.range_m, 0.5, f_mod).at_azimuth(az));
            for c in &clutter {
                scene2 = scene2.with(Scatterer::clutter(c.range_m, c.relative_amp * 0.5));
            }
            let chirps = vec![Chirp::new(sys.radar.f0, sys.radar.bandwidth, 96e-6); 128];
            let train = ChirpTrain::with_fixed_period(&chirps, sys.radar.t_period).unwrap();
            let rx2 = IfReceiver {
                sample_rate_hz: sys.rx.if_sample_rate,
                noise_sigma: 0.02,
            };
            let mut n2 = biscatter_core::dsp::signal::NoiseSource::new(seed ^ 0xA0A);
            let capture = rx2.dechirp_train_array(&train, &scene2, 0.0, 2, 0.5, &mut n2);
            let frames: Vec<_> = (0..capture.n_rx())
                .map(|k| align_frame(&sys.rx, &train, &capture.rx_view(k)))
                .collect();
            locate_tag_2d(&frames, 0.5, f_mod, 10.0)
        };

        match out.location {
            Some(loc) => {
                found += 1;
                let err_cm = (loc.range_m - asset.range_m).abs() * 100.0;
                let record = out
                    .uplink_bits
                    .as_deref()
                    .and_then(|bits| {
                        biscatter_core::link::packet::UplinkFrame::from_bits(
                            bits,
                            asset.record.len() * 2,
                            1,
                        )
                    })
                    .map(|f| decode_bytes(&f.payload));
                let record_status = match &record {
                    Some((r, fixes)) if *r == asset.record => {
                        format!("record {:02X?} ✓ ({fixes} FEC fixes)", r)
                    }
                    Some((r, _)) => format!("record {:02X?} (corrupt)", r),
                    None => "record unreadable".to_string(),
                };
                let xy = aoa
                    .map(|p| {
                        let (x, y) = p.cartesian();
                        format!(
                            "({x:5.2}, {y:4.2}) m @ {:+5.1}°",
                            p.azimuth_rad.to_degrees()
                        )
                    })
                    .unwrap_or_else(|| "no 2D fix".to_string());
                println!(
                    "  {:11} @ {:.2} m (err {:4.1} cm, {:4.1} dB)  {}  pos {}",
                    asset.label, loc.range_m, err_cm, loc.snr_db, record_status, xy
                );
            }
            None => println!("  {:11} NOT FOUND", asset.label),
        }
    }
    println!("\n{found}/{} assets inventoried.", assets.len());
    assert_eq!(found, assets.len(), "all assets should be found");
}
