//! The one-time calibration workflow (paper §3.2.1 and §5).
//!
//! Real delay lines never hit their nominal velocity factor — coax `k`
//! varies batch to batch and drifts across a GHz of bandwidth. The paper
//! calibrates once at 0.5 m and reuses the table everywhere; this example
//! walks that workflow on a tag whose lines came out 6 % slow:
//!
//! 1. measure the beat frequency of every alphabet slope at close range,
//! 2. compare the table against eq. 11's nominal prediction,
//! 3. show the decode difference nominal-vs-calibrated at range.
//!
//! Run with: `cargo run --release --example calibration_workflow`

use biscatter_core::dsp::signal::NoiseSource;
use biscatter_core::link::packet::DownlinkSymbol;
use biscatter_core::system::BiScatterSystem;
use biscatter_core::tag::calibration::CalibrationTable;
use biscatter_core::tag::decoder::DownlinkDecoder;
use biscatter_core::tag::demod::SymbolDecider;

fn main() {
    let mut sys = BiScatterSystem::paper_9ghz();
    // This tag's delay lines are 6% slower than the k = 0.7 datasheet value
    // and mildly dispersive — exactly the manufacturing reality calibration
    // exists for.
    sys.front_end.pair.short.velocity_factor = 0.66;
    sys.front_end.pair.long.velocity_factor = 0.66;
    sys.front_end.pair.short.dispersion_per_ghz = -0.004;
    sys.front_end.pair.long.dispersion_per_ghz = -0.004;

    println!(
        "Step 1 — calibrate at 0.5 m ({} dB SNR):\n",
        sys.downlink_snr_at(0.5) as i32
    );
    let table = CalibrationTable::measure(
        &sys.alphabet,
        &sys.front_end,
        sys.radar.t_period,
        sys.downlink_snr_at(0.5),
        8,
        2024,
    );

    println!(
        "{:>10}  {:>12}  {:>12}  {:>8}",
        "symbol", "eq11_kHz", "measured_kHz", "shift"
    );
    let nominal_dt =
        biscatter_core::rf::inches_to_m(45.0) / (0.7 * biscatter_core::dsp::SPEED_OF_LIGHT);
    for c in table.candidates.iter().step_by(6) {
        let nominal = sys.alphabet.beat_freq_for(c.symbol, nominal_dt);
        println!(
            "{:>10}  {:>12.1}  {:>12.1}  {:>7.1}%",
            format!("{:?}", c.symbol),
            nominal / 1e3,
            c.beat_freq_hz / 1e3,
            (c.beat_freq_hz / nominal - 1.0) * 100.0
        );
    }
    let fitted = table.fitted_delta_t(sys.alphabet.bandwidth);
    println!(
        "\nfitted ΔT = {:.3} ns (nominal {:.3} ns, true {:.3} ns)",
        fitted * 1e9,
        nominal_dt * 1e9,
        sys.front_end.pair.delta_t() * 1e9
    );

    // Step 2: decode a long random message at 5 m with both deciders.
    println!("\nStep 2 — decode 64 symbols at 5 m with nominal vs calibrated tables:");
    let symbols: Vec<DownlinkSymbol> = (0..64)
        .map(|i| DownlinkSymbol::Data((i * 13) % sys.alphabet.n_data_symbols() as u16))
        .collect();
    let chirps: Vec<_> = symbols.iter().map(|&s| sys.alphabet.chirp_for(s)).collect();
    let train =
        biscatter_core::rf::frame::ChirpTrain::with_fixed_period(&chirps, sys.radar.t_period)
            .unwrap();
    let snr = sys.downlink_snr_at(5.0);
    let mut noise = NoiseSource::new(2025);
    let capture = sys.front_end.capture_train(&train, snr, 0.0, &mut noise);
    let period = (sys.radar.t_period * sys.front_end.adc.sample_rate_hz).round() as usize;

    let nominal =
        SymbolDecider::from_alphabet(&sys.alphabet, nominal_dt, sys.front_end.adc.sample_rate_hz);
    let calibrated = table.decider();
    let count_errs = |d: &SymbolDecider| {
        d.decide_stream(&capture, period)
            .iter()
            .zip(&symbols)
            .filter(|(a, b)| a != b)
            .count()
    };
    let e_nom = count_errs(&nominal);
    let e_cal = count_errs(&calibrated);
    println!("  nominal table:    {e_nom}/64 symbol errors");
    println!("  calibrated table: {e_cal}/64 symbol errors");

    // Step 3: the calibrated decoder works inside the full pipeline too.
    println!("\nStep 3 — full pipeline (acquisition + framing) with the calibrated table:");
    let decoder = DownlinkDecoder::new(calibrated);
    let outcome = biscatter_core::downlink::run_frame(
        &sys,
        &decoder,
        b"CALIBRATION PAYS OFF",
        snr,
        31e-6,
        &mut NoiseSource::new(2026),
    );
    println!(
        "  parsed: {}  payload: {:?}",
        outcome.parsed,
        String::from_utf8_lossy(&outcome.received)
    );
    assert!(e_cal < e_nom, "calibration must help on a detuned tag");
}
