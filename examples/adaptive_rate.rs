//! Adaptive rate control: the downlink capability the paper motivates in §1
//! ("adapting the tag modulation scheme or data rate to link conditions").
//!
//! A tag moves away from the radar. At each distance the radar probes the
//! link, and when the measured downlink BER exceeds its target it steps the
//! CSSK symbol size down (fewer bits per chirp = wider beat-frequency
//! spacing = more robust), telling the tag over the still-working downlink.
//! The printout shows the classic rate-vs-range staircase.
//!
//! Run with: `cargo run --release --example adaptive_rate`

use biscatter_core::downlink::measure_ber_symbols;
use biscatter_core::radar::configs::RadarConfig;
use biscatter_core::rf::inches_to_m;
use biscatter_core::system::BiScatterSystem;

const BER_TARGET: f64 = 1e-2;
const PROBE_FRAMES: usize = 40;

fn main() {
    println!("Adaptive CSSK rate control (target BER {BER_TARGET:.0e})\n");
    println!(
        "{:>8}  {:>8}  {:>10}  {:>10}  {:>9}",
        "range_m", "snr_dB", "bits/sym", "kbps", "BER"
    );

    let mut bits = 7usize; // start optimistic
    for step in 0..14 {
        let d = 1.0 + step as f64 * 0.5;
        // Re-probe, stepping down until the target holds (never below 1).
        let (sys, ber) = loop {
            let sys = BiScatterSystem::new(RadarConfig::lmx2492_9ghz(), inches_to_m(45.0), bits)
                .expect("valid symbol width");
            let snr = sys.downlink_snr_at(d);
            let ber = measure_ber_symbols(&sys, snr, PROBE_FRAMES, 24, 4242 + step as u64).ber();
            if ber <= BER_TARGET || bits == 1 {
                break (sys, ber);
            }
            bits -= 1;
        };
        let rate_kbps = sys.alphabet.data_rate_bps(sys.radar.t_period) / 1e3;
        println!(
            "{:>8.1}  {:>8.1}  {:>10}  {:>10.1}  {:>9.1e}",
            d,
            sys.downlink_snr_at(d),
            bits,
            rate_kbps,
            ber
        );
    }

    println!("\nThe radar trades throughput for robustness as the link degrades —");
    println!("something an uplink-only backscatter system cannot do at all.");
}
